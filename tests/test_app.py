"""Unit tests for the multi-tenant application layer (:mod:`repro.repager.app`).

Covers the typed request/response contract (:class:`QueryOptions` /
:class:`QueryResponse`), the corpus registry (attach/detach/default), the
machine-readable error taxonomy shared by every entry point, and per-request
pipeline-variant overrides.
"""

from __future__ import annotations

import pytest

from repro.config import PipelineConfig, ServingConfig
from repro.core.pipeline import VARIANT_CONFIGS, make_variant_config
from repro.errors import (
    CorpusNotFoundError,
    DuplicateCorpusError,
    RequestValidationError,
    UnknownFieldsError,
    UnknownVariantError,
    error_payload,
)
from repro.repager.app import (
    CorpusRegistry,
    QueryOptions,
    QueryResponse,
    RePaGerApp,
    normalize_variant,
)
from repro.repager.service import RePaGerService
from repro.serving import warm_up, warm_up_registry


def canonical(payload) -> dict:
    data = payload.to_dict()
    data["stats"] = {k: v for k, v in data["stats"].items() if k != "elapsed_seconds"}
    return data


@pytest.fixture(scope="module")
def app(store, scholar_engine, citation_graph, venues):
    app = RePaGerApp(
        config=ServingConfig(port=0, max_workers=4, query_timeout_seconds=120.0),
        pipeline_config=PipelineConfig(num_seeds=10),
    )
    service = RePaGerService(
        store,
        search_engine=scholar_engine,
        pipeline_config=PipelineConfig(num_seeds=10),
        venues=venues,
        graph=citation_graph,
    )
    app.attach_service("main", service, default=True)
    warm_up_registry(app.registry)
    yield app
    app.close(wait=False)


class TestQueryOptions:
    def test_from_dict_roundtrip(self):
        options = QueryOptions.from_dict(
            {
                "query": "q",
                "year_cutoff": 2015,
                "exclude_ids": ["P1"],
                "use_cache": False,
                "variant": "newst-w",
            }
        )
        assert options == QueryOptions("q", 2015, ("P1",), "NEWST-W", False)

    def test_unknown_fields_rejected_and_listed(self):
        with pytest.raises(UnknownFieldsError) as excinfo:
            QueryOptions.from_dict({"query": "q", "year_cutof": 2015, "bogus": 1})
        assert excinfo.value.fields == ("bogus", "year_cutof")
        assert excinfo.value.code == "unknown_fields"
        assert excinfo.value.http_status == 400
        assert "year_cutof" in str(excinfo.value)

    def test_unknown_variant_rejected(self):
        with pytest.raises(UnknownVariantError) as excinfo:
            QueryOptions.from_dict({"query": "q", "variant": "NEWST-Z"})
        assert excinfo.value.code == "unknown_variant"
        assert "NEWST-W" in str(excinfo.value)

    def test_variant_is_case_insensitive(self):
        for name in VARIANT_CONFIGS:
            assert normalize_variant(name.lower()) == name

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"query": ""},
            {"query": 42},
            {"query": "q", "variant": 7},
            {"query": "q", "year_cutoff": "2015"},
            {"query": "q", "use_cache": "yes"},
        ],
    )
    def test_bad_bodies_raise_validation_errors(self, body):
        with pytest.raises(RequestValidationError):
            QueryOptions.from_dict(body)


class TestErrorTaxonomy:
    def test_every_payload_carries_a_stable_code(self):
        payload = error_payload(CorpusNotFoundError("nope", ("a",)))
        assert payload["code"] == "corpus_not_found"
        assert payload["error"] == payload["code"]
        assert payload["http_status"] == 404
        assert "nope" in payload["detail"]

    def test_plain_exceptions_map_to_internal(self):
        payload = error_payload(RuntimeError("boom"))
        assert payload["code"] == "internal"
        assert payload["http_status"] == 500
        assert "RuntimeError" in payload["detail"]

    def test_bare_value_errors_are_internal_failures(self):
        """Client-caused validation problems are always RequestValidationError;
        a bare ValueError can only come from inside the pipeline and must
        surface as a 500, not blame the client."""
        payload = error_payload(ValueError("nope"))
        assert (payload["code"], payload["http_status"]) == ("internal", 500)

    def test_request_validation_errors_stay_400(self):
        payload = error_payload(RequestValidationError("bad field"))
        assert (payload["code"], payload["http_status"]) == ("bad_request", 400)


class TestCorpusRegistry:
    def _service(self, store, scholar_engine, citation_graph, venues):
        return RePaGerService(
            store,
            search_engine=scholar_engine,
            pipeline_config=PipelineConfig(num_seeds=10),
            venues=venues,
            graph=citation_graph,
        )

    def test_first_attach_becomes_default(self, store, scholar_engine,
                                          citation_graph, venues):
        registry = CorpusRegistry()
        service = self._service(store, scholar_engine, citation_graph, venues)
        registry.attach("a", service)
        registry.attach("b", service)
        assert registry.default_name == "a"
        assert registry.names() == ("a", "b")
        assert registry.resolve(None).name == "a"
        registry.set_default("b")
        assert registry.resolve(None).name == "b"

    def test_duplicate_attach_rejected(self, store, scholar_engine,
                                       citation_graph, venues):
        registry = CorpusRegistry()
        service = self._service(store, scholar_engine, citation_graph, venues)
        registry.attach("a", service)
        with pytest.raises(DuplicateCorpusError):
            registry.attach("a", service)

    def test_invalid_names_rejected(self, store, scholar_engine,
                                    citation_graph, venues):
        registry = CorpusRegistry()
        service = self._service(store, scholar_engine, citation_graph, venues)
        for bad in ("", "has space", "a/b", ".hidden", "x" * 65):
            with pytest.raises(RequestValidationError):
                registry.attach(bad, service)

    def test_detaching_the_default_clears_it_rather_than_reassigning(
            self, store, scholar_engine, citation_graph, venues):
        """Legacy routes must never silently switch to a different corpus:
        after the default tenant is detached there IS no default until an
        operator picks one."""
        registry = CorpusRegistry()
        service = self._service(store, scholar_engine, citation_graph, venues)
        registry.attach("a", service)
        registry.attach("b", service)
        registry.detach("a")
        assert registry.default_name is None
        with pytest.raises(CorpusNotFoundError):
            registry.default()
        with pytest.raises(CorpusNotFoundError) as excinfo:
            registry.get("a")
        assert excinfo.value.attached == ("b",)
        registry.set_default("b")
        assert registry.resolve(None).name == "b"
        # A fresh attach while no default exists becomes the default again.
        registry.detach("b")
        registry.attach("c", service)
        assert registry.default_name == "c"


class TestRePaGerApp:
    def test_query_response_metadata(self, app):
        response = app.query("pretrained language models")
        assert isinstance(response, QueryResponse)
        assert response.corpus == "main"
        assert response.variant == "default"
        assert response.served_in_seconds > 0.0
        assert response.config_fingerprint
        body = response.to_dict()
        assert set(body) == {"payload", "serving"}
        assert body["serving"]["corpus"] == "main"

    def test_legacy_dict_matches_service_payload(self, app):
        response = app.query("pretrained language models", corpus="main")
        direct = app.registry.get("main").service.query("pretrained language models")
        legacy = response.to_legacy_dict()
        served = legacy.pop("served_in_seconds")
        assert served >= 0.0
        legacy["stats"] = {
            k: v for k, v in legacy["stats"].items() if k != "elapsed_seconds"
        }
        assert legacy == canonical(direct)

    def test_string_and_mapping_inputs(self, app):
        by_string = app.query("machine learning")
        by_mapping = app.query({"query": "machine learning"})
        assert canonical(by_string.payload) == canonical(by_mapping.payload)

    def test_unknown_corpus_raises_taxonomy_error(self, app):
        with pytest.raises(CorpusNotFoundError) as excinfo:
            app.query("q", corpus="nope")
        assert excinfo.value.http_status == 404

    def test_variant_override_matches_dedicated_service(self, app, store,
                                                        scholar_engine,
                                                        citation_graph, venues):
        """A per-request NEWST-W override returns byte-identical output to a
        service configured with the NEWST-W pipeline from scratch."""
        response = app.query(
            {"query": "image processing", "variant": "NEWST-W", "use_cache": False}
        )
        assert response.variant == "NEWST-W"
        dedicated = RePaGerService(
            store,
            search_engine=scholar_engine,
            pipeline_config=make_variant_config("NEWST-W", PipelineConfig(num_seeds=10)),
            venues=venues,
            graph=citation_graph,
        )
        assert canonical(response.payload) == canonical(
            dedicated.query("image processing")
        )
        assert response.config_fingerprint == dedicated.pipeline.config_fingerprint

    def test_variant_service_shares_corpus_artifacts(self, app):
        """The lazily built variant pipeline reuses the base tenant's CSR
        snapshot, node weights and edge-relevance map instead of recomputing."""
        tenant = app.registry.get("main")
        base = tenant.service.pipeline
        variant_service = tenant.service_for("NEWST-N")
        assert variant_service is not tenant.service
        assert variant_service.pipeline._node_weights is base._node_weights
        assert (
            variant_service.pipeline.weight_builder._snapshot
            is base.weight_builder._snapshot
        )
        assert "NEWST-N" in tenant.variants_loaded()
        # NEWST (empty override) resolves to the base service itself.
        assert tenant.service_for("NEWST") is tenant.service

    def test_per_corpus_health_reports_readiness(self, app):
        health = app.health("main")
        assert health["corpus"] == "main"
        assert health["default"] is True
        assert health["config_fingerprint"]
        assert health["warmed"] is True
        assert set(health["readiness"]) == {
            "node_weights_ready",
            "graph_snapshot_ready",
            "search_index_ready",
            "edge_relevance_ready",
        }
        assert all(health["readiness"].values())

    def test_cold_tenant_reports_not_warmed(self, store, scholar_engine,
                                            citation_graph, venues):
        with RePaGerApp(config=ServingConfig(port=0)) as cold_app:
            service = RePaGerService(
                store,
                search_engine=scholar_engine,
                pipeline_config=PipelineConfig(num_seeds=10),
                venues=venues,
                graph=citation_graph,
            )
            # The session-scoped engine/graph may be warm; a fresh pipeline's
            # node weights are definitely not.
            cold_app.attach_service("cold", service)
            health = cold_app.health("cold")
            assert health["readiness"]["node_weights_ready"] is False
            assert health["warmed"] is False
            warm_up(service)
            assert cold_app.health("cold")["warmed"] is True

    def test_aggregate_health_mirrors_default_tenant(self, app):
        health = app.health()
        assert health["status"] == "ok"
        assert health["num_corpora"] == len(app.registry)
        assert health["default_corpus"] == "main"
        assert "main" in health["corpora"]
        main = app.registry.get("main").service
        assert health["papers"] == len(main.store)
        assert health["config_fingerprint"] == main.pipeline.config_fingerprint

    def test_metrics_are_labelled_per_corpus(self, app):
        app.query("machine learning")
        text = app.metrics_text()
        assert 'repager_queries_total{corpus="main"}' in text

    def test_attach_store_namespaces_the_shared_cache(self, app, store):
        tenant = app.attach_store("extra", store, PipelineConfig(num_seeds=10))
        try:
            assert tenant.service.cache is app.cache
            assert tenant.service.cache_namespace == "extra"
            warm_up(tenant.service)
            app.query("machine learning", corpus="extra")
            assert any(key[0] == "extra" for key in app.cache._entries)
        finally:
            app.detach("extra")
        # Detach drops the namespaced entries eagerly.
        assert not any(key[0] == "extra" for key in app.cache._entries)

    def test_attach_directory_validates_path(self, app):
        with pytest.raises(RequestValidationError):
            app.attach_directory("ghost", "/nonexistent/corpus/dir")

    def test_attach_service_adopts_namespace_for_shared_cache(self, store,
                                                              scholar_engine,
                                                              citation_graph,
                                                              venues):
        """Two same-config tenants sharing one un-namespaced cache would serve
        each other's entries (the fingerprint encodes config, not corpus);
        attach_service must namespace them."""
        from repro.serving import ResultCache

        shared = ResultCache(max_entries=16, ttl_seconds=60.0)
        with RePaGerApp(config=ServingConfig(port=0)) as fresh_app:
            for name in ("a", "b"):
                service = RePaGerService(
                    store,
                    search_engine=scholar_engine,
                    pipeline_config=PipelineConfig(num_seeds=10),
                    venues=venues,
                    graph=citation_graph,
                    cache=shared,
                )
                fresh_app.attach_service(name, service)
            assert fresh_app.registry.get("a").service.cache_namespace == "a"
            assert fresh_app.registry.get("b").service.cache_namespace == "b"
