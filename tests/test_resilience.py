"""Resilience suite: fault injection, deadlines, degradation, crash safety.

The serving stack's failure semantics are a contract just like the golden
payloads: a fault at any pipeline stage must resolve to a degraded-but-marked
stale serve, an honest backpressure response (``Retry-After`` on every 5xx),
a circuit-breaker fast rejection, or a watchdog-recovered worker pool — never
a silent hang or an unmarked wrong answer.  This module pins that contract at
three levels:

* unit — fault-spec parsing/triggering, the circuit state machine, deadline
  propagation, stale-grace cache semantics, trace sampling, the non-critical
  event-log sink, checksummed/atomic snapshot persistence;
* application — degraded stale serves (byte-identical to the last fresh
  payload, on both graph backends), bounded retries, deadline overrides,
  eviction round trips across a corrupted snapshot, the worker watchdog;
* HTTP — the test-only ``/v1/faults`` surface, ``X-Request-Deadline``,
  ``Warning: 110`` on degraded responses, circuit state in corpus detail,
  and a seeded chaos flood whose disarmed re-run is byte-identical to the
  pre-fault golden payloads.

Fault plans are process-global, so every test arms via the ``armed()``
context manager (or disarms in ``finally``); an autouse fixture guarantees
no plan leaks into the rest of the suite.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.config import (
    CorpusConfig,
    ObsConfig,
    PipelineConfig,
    ServingConfig,
    TenantOverrides,
)
from repro.corpus.generator import CorpusGenerator
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    FaultInjectedError,
    SnapshotCorruptError,
    WorkerHungError,
)
from repro.obs.events import EventLog, read_event_records
from repro.obs.trace import Tracer
from repro.repager.app import QueryOptions, RePaGerApp
from repro.repager.service import RePaGerService
from repro.resilience import (
    CircuitBreaker,
    FaultPlan,
    FaultRule,
    active_plan,
    armed,
    check_deadline,
    deadline_scope,
    disarm,
    fault_point,
    parse_fault_spec,
    remaining_seconds,
)
from repro.serving import (
    ArtifactSnapshot,
    BatchExecutor,
    MetricsRegistry,
    QueryRequest,
    ResultCache,
    create_server,
    make_query_key,
    start_in_background,
    warm_up,
    warm_up_registry,
)
from repro.serving.warmup import atomic_write_text

PIPELINE = PipelineConfig(num_seeds=10)

#: Small deterministic corpora — resilience tests exercise failure paths, not
#: path quality, so the corpus only needs to be big enough to solve on.
SMALL_CORPUS_CONFIG = CorpusConfig(
    seed=17, papers_per_topic=12, surveys_per_topic=1, citations_per_paper=8.0
)
BETA_CORPUS_CONFIG = CorpusConfig(
    seed=29, papers_per_topic=12, surveys_per_topic=1, citations_per_paper=8.0
)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """Fault plans are process-global: never let one escape a test."""
    yield
    disarm()


class FakeClock:
    """Manually advanced monotonic clock for cache TTL / breaker tests."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def small_store():
    return CorpusGenerator(SMALL_CORPUS_CONFIG).generate().store


@pytest.fixture(scope="module")
def small_corpus_dir(small_store, tmp_path_factory):
    path = tmp_path_factory.mktemp("resilience-corpora") / "small"
    small_store.save(path)
    return str(path)


@pytest.fixture(scope="module")
def snap_service(small_store):
    service = RePaGerService(small_store, pipeline_config=PIPELINE)
    warm_up(service)
    return service


def canonical_payload(payload_dict: dict) -> bytes:
    """Byte-level payload contract minus wall-clock timing."""
    data = dict(payload_dict)
    data["stats"] = {
        k: v for k, v in data["stats"].items() if k != "elapsed_seconds"
    }
    return json.dumps(data, sort_keys=True).encode("utf-8")


# ---------------------------------------------------------------------------
# Fault registry (unit)
# ---------------------------------------------------------------------------


class TestFaultSpecs:
    @pytest.mark.parametrize(
        "spec",
        [
            "steiner_solve=fail",
            "steiner_solve=fail:0.25",
            "snapshot_load=corrupt:@1",
            "worker=delay:0.5",
            "worker=delay:0.5:@2",
            "cache_lookup=fail:@3",
        ],
    )
    def test_spec_round_trips(self, spec):
        rule = parse_fault_spec(spec)
        assert rule.spec() == spec
        assert parse_fault_spec(rule.spec()) == rule

    @pytest.mark.parametrize(
        "spec",
        [
            "nosuchpoint=fail",          # unknown point
            "steiner_solve=explode",     # unknown action
            "steiner_solve",             # no '='
            "steiner_solve=",            # empty action
            "worker=delay",              # delay without duration
            "worker=delay:0",            # non-positive duration
            "steiner_solve=fail:0",      # probability outside (0, 1]
            "steiner_solve=fail:1.5",
            "steiner_solve=fail:@0",     # call index must be >= 1
            "steiner_solve=fail:0.5:@2", # too many fields for a fail rule
        ],
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_fault_spec(spec)

    def test_rule_rejects_both_triggers(self):
        with pytest.raises(ValueError):
            FaultRule(point="steiner_solve", action="fail", probability=0.5, nth=2)

    def test_nth_trigger_fires_exactly_once(self):
        plan = FaultPlan.from_specs(["steiner_solve=fail:@2"])
        fired = [plan.visit("steiner_solve") is not None for _ in range(4)]
        assert fired == [False, True, False, False]
        described = plan.describe()
        assert described["calls"] == {"steiner_solve": 4}
        assert described["injected"] == {"steiner_solve": 1}

    def test_probability_trigger_is_seed_deterministic(self):
        def firing_pattern(seed):
            plan = FaultPlan.from_specs(["steiner_solve=fail:0.5"], seed=seed)
            return [plan.visit("steiner_solve") is not None for _ in range(64)]

        assert firing_pattern(42) == firing_pattern(42)
        assert any(firing_pattern(42))
        assert not all(firing_pattern(42))

    def test_other_points_do_not_fire(self):
        plan = FaultPlan.from_specs(["steiner_solve=fail"])
        assert plan.visit("cache_lookup") is None
        assert plan.describe()["injected"] == {}

    def test_armed_context_scopes_the_plan(self):
        assert fault_point("steiner_solve") is None
        plan = FaultPlan.from_specs(["steiner_solve=fail"])
        with armed(plan):
            assert active_plan() is plan
            with pytest.raises(FaultInjectedError):
                fault_point("steiner_solve")
        assert active_plan() is None
        assert fault_point("steiner_solve") is None

    def test_armed_context_disarms_on_exception(self):
        with pytest.raises(RuntimeError):
            with armed(FaultPlan.from_specs(["steiner_solve=fail"])):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_delay_action_sleeps_then_continues(self):
        with armed(FaultPlan.from_specs(["worker=delay:0.05"])):
            started = time.monotonic()
            assert fault_point("worker") is None
            assert time.monotonic() - started >= 0.05

    def test_corrupt_action_reports_to_the_call_site(self):
        with armed(FaultPlan.from_specs(["snapshot_load=corrupt"])):
            assert fault_point("snapshot_load") == "corrupt"


# ---------------------------------------------------------------------------
# Circuit breaker (unit, injected clock)
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, clock, threshold=3, reset=10.0):
        return CircuitBreaker(
            "tenant", failure_threshold=threshold, reset_seconds=reset, clock=clock
        )

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = self.make(clock)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # newly opened
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as err:
            breaker.check()
        assert err.value.retry_after_seconds >= 1
        assert err.value.http_status == 503

    def test_success_resets_the_failure_run(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.record_success() is False  # already closed: no event
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(10.1)
        breaker.check()  # the probe gets through
        assert breaker.state == "half_open"
        # Concurrent traffic during the probe is still rejected.
        with pytest.raises(CircuitOpenError):
            breaker.check()
        assert breaker.record_success() is True  # newly closed: log recovery
        assert breaker.state == "closed"
        breaker.check()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(10.1)
        breaker.check()
        assert breaker.record_failure() is True  # probe answered: reopen
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.check()

    def test_aborted_probe_releases_the_slot(self):
        """Regression: a probe with an excluded outcome (deadline shed,
        client error) must free the half-open slot, not wedge the breaker."""
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(10.1)
        breaker.check()  # admitted as the half-open probe
        assert breaker.state == "half_open"
        breaker.abort_probe()  # the probe ended without a countable outcome
        breaker.check()  # the slot is free: the next request probes instead
        assert breaker.record_success() is True
        assert breaker.state == "closed"

    def test_describe_reports_cooldown(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(4.0)
        info = breaker.describe()
        assert info["state"] == "open"
        assert info["open_count"] == 1
        assert info["opened_seconds_ago"] == pytest.approx(4.0)
        assert info["retry_after_seconds"] == 6

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("t", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("t", reset_seconds=0.0)


# ---------------------------------------------------------------------------
# Deadlines (unit)
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_unbounded_context_is_a_no_op(self):
        assert remaining_seconds() is None
        check_deadline("anywhere")

    def test_expired_deadline_aborts_with_the_stage(self):
        with deadline_scope(time.monotonic() - 0.01):
            with pytest.raises(DeadlineExceededError) as err:
                check_deadline("metric_closure")
        assert err.value.stage == "metric_closure"
        assert err.value.http_status == 504
        check_deadline("after")  # scope restored

    def test_remaining_seconds_tracks_the_scope(self):
        with deadline_scope(time.monotonic() + 5.0):
            remaining = remaining_seconds()
            assert remaining is not None and 4.0 < remaining <= 5.0

    def test_executor_sheds_expired_requests_at_admission(self):
        metrics = MetricsRegistry()
        executor = BatchExecutor(
            lambda request: "ok",
            max_workers=1,
            queue_depth=2,
            timeout_seconds=5.0,
            metrics=metrics,
        )
        try:
            with pytest.raises(DeadlineExceededError) as err:
                executor.run_one(
                    QueryRequest(text="late", deadline=time.monotonic() - 0.01)
                )
            assert err.value.stage == "admission"
            assert metrics.counter("deadline_shed_total") == 1
            # A request with budget left still runs.
            assert (
                executor.run_one(
                    QueryRequest(text="fine", deadline=time.monotonic() + 5.0)
                )
                == "ok"
            )
        finally:
            executor.shutdown(wait=False)


# ---------------------------------------------------------------------------
# Stale-grace cache semantics (unit, injected clock)
# ---------------------------------------------------------------------------


class TestStaleCache:
    KEY = make_query_key("deep learning", None, (), "fp")

    def test_stale_entry_survives_within_grace(self):
        clock = FakeClock()
        cache = ResultCache(
            max_entries=4, ttl_seconds=10.0, clock=clock, stale_grace_seconds=30.0
        )
        cache.put(self.KEY, "payload")
        assert cache.get(self.KEY) == "payload"
        clock.advance(11.0)
        assert cache.get(self.KEY) is None  # expired for fresh traffic...
        assert cache.get_stale(self.KEY) == "payload"  # ...but degradable
        stats = cache.stats()
        assert stats.stale_hits == 1
        assert stats.expirations == 0  # still resident for the grace window

    def test_entry_past_the_grace_is_gone_for_good(self):
        clock = FakeClock()
        cache = ResultCache(
            max_entries=4, ttl_seconds=10.0, clock=clock, stale_grace_seconds=30.0
        )
        cache.put(self.KEY, "payload")
        clock.advance(41.0)
        assert cache.get_stale(self.KEY) is None
        assert cache.get(self.KEY) is None
        assert cache.stats().expirations == 1

    def test_zero_grace_preserves_original_expiry_semantics(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=4, ttl_seconds=10.0, clock=clock)
        cache.put(self.KEY, "payload")
        clock.advance(11.0)
        assert cache.get(self.KEY) is None
        assert cache.get_stale(self.KEY) is None
        assert cache.stats().expirations == 1

    def test_get_stale_serves_fresh_entries_too(self):
        cache = ResultCache(max_entries=4, ttl_seconds=10.0, clock=FakeClock())
        cache.put(self.KEY, "payload")
        assert cache.get_stale(self.KEY) == "payload"
        with pytest.raises(ValueError):
            ResultCache(stale_grace_seconds=-1.0)


# ---------------------------------------------------------------------------
# Trace sampling (unit)
# ---------------------------------------------------------------------------


class TestTraceSampling:
    def test_unsampled_ok_trace_skips_the_ring_but_feeds_histograms(self):
        finished = []
        tracer = Tracer(capacity=8, on_finish=finished.append)
        with tracer.trace("query", corpus="t", sample_rate=0.0) as trace:
            assert trace is not None  # the trace still runs in full
        assert len(tracer) == 0
        assert len(finished) == 1  # histograms stay accurate
        assert finished[0].sampled is False
        assert finished[0].summary()["sampled"] is False

    def test_failed_traces_are_always_retained(self):
        tracer = Tracer(capacity=8)
        with pytest.raises(RuntimeError):
            with tracer.trace("query", corpus="t", sample_rate=0.0):
                raise RuntimeError("boom")
        recent = tracer.recent()
        assert len(recent) == 1
        assert recent[0].status == "error"
        assert recent[0].summary()["sampled"] is False

    def test_slow_traces_are_always_retained(self):
        tracer = Tracer(capacity=8, slow_threshold_seconds=0.0)
        with tracer.trace("query", corpus="t", sample_rate=0.0):
            pass
        assert len(tracer) == 1
        assert tracer.slow()

    def test_full_sampling_is_the_additive_only_default(self):
        tracer = Tracer(capacity=8)
        with tracer.trace("query", corpus="t", sample_rate=1.0):
            pass
        with tracer.trace("query", corpus="t"):
            pass
        assert len(tracer) == 2
        for trace in tracer.recent():
            assert "sampled" not in trace.summary()


# ---------------------------------------------------------------------------
# Event log: a non-critical sink (unit)
# ---------------------------------------------------------------------------


class TestEventLogResilience:
    def test_write_failure_is_absorbed_not_raised(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path), capacity=16)
        try:
            log.emit("corpus_attach", corpus="x")
            with armed(FaultPlan.from_specs(["event_log_write=fail"])):
                record = log.emit("quota_reject", corpus="x")
            assert record["event"] == "quota_reject"
            assert log.write_errors == 1
            # The in-memory record survives even though the sink write failed.
            assert [e["event"] for e in log.tail()] == [
                "corpus_attach",
                "quota_reject",
            ]
        finally:
            log.close()
        persisted = [r["event"] for r in read_event_records(path)]
        assert persisted == ["corpus_attach"]

    def test_torn_line_is_skipped_by_the_reader(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path), capacity=16)
        try:
            with armed(FaultPlan.from_specs(["event_log_write=corrupt"])):
                log.emit("corpus_attach", corpus="x")
            log.emit("corpus_detach", corpus="x")
        finally:
            log.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        with pytest.raises(json.JSONDecodeError):
            json.loads(lines[0])  # the torn write
        assert [r["event"] for r in read_event_records(path)] == ["corpus_detach"]


# ---------------------------------------------------------------------------
# Snapshot persistence: atomic writes, checksums, quarantine
# ---------------------------------------------------------------------------


class TestSnapshotPersistence:
    def test_checksummed_round_trip(self, snap_service, tmp_path):
        path = tmp_path / "snap.json"
        snapshot = ArtifactSnapshot.capture(snap_service)
        snapshot.save(path)
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["version"] == 3
        assert "checksum" in document
        loaded = ArtifactSnapshot.load(path)
        assert loaded.config_fingerprint == snapshot.config_fingerprint
        assert loaded.graph_nodes == snapshot.graph_nodes
        assert loaded.graph_edges == snapshot.graph_edges
        assert loaded.pagerank_scores == snapshot.pagerank_scores
        assert loaded.edge_relevance == snapshot.edge_relevance

    def test_tampered_snapshot_is_quarantined(self, snap_service, tmp_path):
        path = tmp_path / "snap.json"
        ArtifactSnapshot.capture(snap_service).save(path)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["graph_nodes"] = document["graph_nodes"] + 1  # checksum now lies
        path.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
        with pytest.raises(SnapshotCorruptError) as err:
            ArtifactSnapshot.load(path)
        quarantined = tmp_path / "snap.json.corrupt"
        assert err.value.quarantine_path == str(quarantined)
        assert quarantined.is_file()
        assert not path.exists()

    def test_torn_snapshot_is_quarantined(self, snap_service, tmp_path):
        path = tmp_path / "snap.json"
        ArtifactSnapshot.capture(snap_service).save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # a writer killed mid-append
        with pytest.raises(SnapshotCorruptError):
            ArtifactSnapshot.load(path)
        assert (tmp_path / "snap.json.corrupt").is_file()

    def test_quarantine_can_be_disabled(self, snap_service, tmp_path):
        path = tmp_path / "snap.json"
        ArtifactSnapshot.capture(snap_service).save(path)
        path.write_bytes(path.read_bytes()[:64])
        with pytest.raises(SnapshotCorruptError) as err:
            ArtifactSnapshot.load(path, quarantine=False)
        assert err.value.quarantine_path is None
        assert path.is_file()

    def test_pre_checksum_versions_still_load(self, snap_service, tmp_path):
        snapshot = ArtifactSnapshot.capture(snap_service)
        document = {
            "version": 2,
            "config_fingerprint": snapshot.config_fingerprint,
            "pagerank_scores": snapshot.pagerank_scores,
            "venue_scores": snapshot.venue_scores,
            "graph_nodes": snapshot.graph_nodes,
            "graph_edges": snapshot.graph_edges,
        }
        path = tmp_path / "v2.json"
        path.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
        loaded = ArtifactSnapshot.load(path)
        assert loaded.config_fingerprint == snapshot.config_fingerprint
        assert loaded.search_index is None

    def test_kill_mid_capture_leaves_the_old_snapshot_intact(
        self, snap_service, tmp_path
    ):
        """Regression for the non-atomic evict write: a crash between the tmp
        write and the rename must leave the previous snapshot byte-identical
        and no tmp debris behind."""
        path = tmp_path / "snap.json"
        snapshot = ArtifactSnapshot.capture(snap_service)
        snapshot.save(path)
        before = path.read_bytes()
        with armed(FaultPlan.from_specs(["snapshot_write=fail"])):
            with pytest.raises(FaultInjectedError):
                snapshot.save(path)
        assert path.read_bytes() == before
        assert not list(tmp_path.glob("*.tmp.*"))
        snapshot.save(path)  # disarmed: the write goes through again
        assert ArtifactSnapshot.load(path).graph_nodes == snapshot.graph_nodes

    def test_capture_fault_never_touches_the_destination(
        self, snap_service, tmp_path
    ):
        path = tmp_path / "never.json"
        with armed(FaultPlan.from_specs(["snapshot_capture=fail"])):
            with pytest.raises(FaultInjectedError):
                ArtifactSnapshot.capture(snap_service).save(path)
        assert not path.exists()

    def test_snapshot_load_corrupt_fault_exercises_quarantine(
        self, snap_service, tmp_path
    ):
        path = tmp_path / "snap.json"
        ArtifactSnapshot.capture(snap_service).save(path)
        with armed(FaultPlan.from_specs(["snapshot_load=corrupt"])):
            with pytest.raises(SnapshotCorruptError):
                ArtifactSnapshot.load(path)
        assert (tmp_path / "snap.json.corrupt").is_file()

    def test_concurrent_saves_publish_whole_files(self, tmp_path):
        """Regression: per-call-unique tmp names — two threads saving the
        same path must never interleave into one shared tmp file."""
        path = tmp_path / "snap.json"
        texts = ["a" * 65536, "b" * 65536]
        errors: list[Exception] = []

        def writer(text):
            try:
                for _ in range(20):
                    atomic_write_text(path, text)
            except Exception as exc:  # noqa: BLE001 - re-raised via assert
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in texts]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert path.read_text() in texts  # one whole write won, never a mix
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_atomic_write_text_survives_injected_crash(self, tmp_path):
        path = tmp_path / "file.txt"
        atomic_write_text(path, "old content")
        with armed(FaultPlan.from_specs(["snapshot_write=fail"])):
            with pytest.raises(FaultInjectedError):
                atomic_write_text(path, "new content")
        assert path.read_text(encoding="utf-8") == "old content"
        assert not list(tmp_path.glob("*.tmp.*"))


class TestEvictionAcrossCorruption:
    def test_corrupt_snapshot_cold_reattaches_and_quarantines(
        self, small_corpus_dir
    ):
        app = RePaGerApp(
            config=ServingConfig(
                port=0, max_workers=2, circuit_failure_threshold=None
            ),
            pipeline_config=PIPELINE,
        )
        try:
            app.attach_directory("solo", small_corpus_dir, default=True)
            fresh = app.query(QueryOptions(query="machine learning", use_cache=False))
            record = app.evict("solo")
            assert record.snapshot_path is not None
            snapshot_path = Path(record.snapshot_path)
            assert snapshot_path.is_file()
            data = snapshot_path.read_bytes()
            snapshot_path.write_bytes(data[: len(data) // 2])

            # The next query transparently re-attaches; the torn snapshot is
            # quarantined and the tenant rebuilds cold — byte-identically.
            again = app.query(QueryOptions(query="machine learning", use_cache=False))
            assert canonical_payload(again.payload.to_dict()) == canonical_payload(
                fresh.payload.to_dict()
            )
            quarantines = app.events.tail(event="snapshot_quarantine")
            assert quarantines and quarantines[-1]["corpus"] == "solo"
            quarantine_path = quarantines[-1]["detail"]["quarantine_path"]
            assert quarantine_path.endswith(".corrupt")
            assert Path(quarantine_path).is_file()
            assert not snapshot_path.exists()
        finally:
            app.close(wait=False)


# ---------------------------------------------------------------------------
# Worker watchdog
# ---------------------------------------------------------------------------


class TestWorkerWatchdog:
    def test_hung_worker_is_failed_and_replaced(self):
        metrics = MetricsRegistry()

        def handler(request):
            if request.text == "hang":
                time.sleep(0.8)
            return f"ok:{request.text}"

        executor = BatchExecutor(
            handler,
            max_workers=1,
            queue_depth=4,
            timeout_seconds=10.0,
            metrics=metrics,
            hang_seconds=0.15,
        )
        try:
            with pytest.raises(WorkerHungError) as err:
                executor.run_one(QueryRequest(text="hang"))
            assert err.value.http_status == 503
            assert metrics.counter("worker_replaced_total") == 1
            info = executor.pool_info()
            assert info["replaced_total"] == 1
            assert info["alive"] >= 1  # capacity was never lost
            # The replacement worker serves the very next request.
            assert executor.run_one(QueryRequest(text="after")) == "ok:after"
        finally:
            executor.shutdown(wait=False)

    def test_watchdog_via_fault_plan_delay(self):
        executor = BatchExecutor(
            lambda request: "ok",
            max_workers=1,
            queue_depth=4,
            timeout_seconds=10.0,
            metrics=MetricsRegistry(),
            hang_seconds=0.15,
        )
        try:
            with armed(FaultPlan.from_specs(["worker=delay:0.8:@1"])):
                with pytest.raises(WorkerHungError):
                    executor.run_one(QueryRequest(text="stuck"))
                assert executor.run_one(QueryRequest(text="next")) == "ok"
        finally:
            executor.shutdown(wait=False)


# ---------------------------------------------------------------------------
# Application-level resilience
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def app_clock():
    return FakeClock()


@pytest.fixture(scope="module")
def resilience_app(small_store, app_clock):
    """One in-process app exercising the whole resilience ladder.

    The result cache runs on an injected clock so tests can expire entries
    into the stale-grace window without sleeping.
    """
    cache = ResultCache(
        max_entries=128,
        ttl_seconds=60.0,
        clock=app_clock,
        stale_grace_seconds=600.0,
    )
    app = RePaGerApp(
        config=ServingConfig(
            port=0,
            max_workers=2,
            queue_depth=8,
            query_timeout_seconds=30.0,
            default_corpus="main",
            stale_grace_seconds=600.0,
            retry_attempts=2,
            retry_backoff_seconds=0.01,
            circuit_failure_threshold=3,
            circuit_reset_seconds=0.25,
            obs=ObsConfig(trace_sample_rate=0.0),
        ),
        cache=cache,
        pipeline_config=PIPELINE,
    )
    app.attach_store("main", small_store, default=True)
    app.attach_store(
        "sampled",
        small_store,
        overrides=TenantOverrides(trace_sample_rate=1.0),
    )
    app.attach_store(
        "bounded",
        small_store,
        overrides=TenantOverrides(deadline_seconds=0.05),
    )
    warm_up_registry(app.registry)
    yield app
    app.close(wait=False)


class TestAppResilience:
    def _close_breaker(self, app, corpus="main"):
        """Leave the tenant's breaker closed for the next test."""
        disarm()
        response = app.query(
            QueryOptions(query="machine learning breaker reset", use_cache=False),
            corpus=corpus,
        )
        assert response.degraded is False

    def test_retry_recovers_from_a_transient_fault(self, resilience_app):
        app = resilience_app
        tenant_metrics = app.registry.get("main").service.metrics
        before = tenant_metrics.counter("retries_total")
        with armed(FaultPlan.from_specs(["steiner_solve=fail:@1"])):
            response = app.query(QueryOptions(query="machine learning transient fault"))
        assert response.degraded is False
        assert tenant_metrics.counter("retries_total") == before + 1

    @pytest.mark.parametrize("backend", ["indexed", "dict"])
    def test_degraded_serve_is_the_last_fresh_payload(self, small_store, backend):
        """Satellite: stale-but-marked serving on both graph backends."""
        clock = FakeClock()
        cache = ResultCache(
            max_entries=32, ttl_seconds=60.0, clock=clock, stale_grace_seconds=600.0
        )
        app = RePaGerApp(
            config=ServingConfig(
                port=0,
                max_workers=1,
                stale_grace_seconds=600.0,
                circuit_failure_threshold=None,
            ),
            cache=cache,
            pipeline_config=PipelineConfig(num_seeds=10, graph_backend=backend),
        )
        try:
            app.attach_store("main", small_store, default=True)
            fresh = app.query(QueryOptions(query="machine learning"))
            assert fresh.degraded is False
            assert "degraded" not in fresh.serving_meta()

            clock.advance(61.0)  # expired for fresh traffic, within the grace
            with armed(FaultPlan.from_specs(["steiner_solve=fail"])):
                degraded = app.query(QueryOptions(query="machine learning"))
            assert degraded.degraded is True
            assert degraded.degraded_reason == "fault_injected"
            assert degraded.cached is True
            meta = degraded.serving_meta()
            assert meta["degraded"] is True
            assert meta["degraded_reason"] == "fault_injected"
            # The degraded payload IS the last fresh payload, byte for byte.
            assert degraded.payload.to_dict() == fresh.payload.to_dict()

            tenant_metrics = app.registry.get("main").service.metrics
            assert tenant_metrics.counter("degraded_served_total") == 1
            serves = app.events.tail(event="degraded_serve")
            assert serves and serves[-1]["corpus"] == "main"
            assert serves[-1]["detail"]["reason"] == "fault_injected"

            # Past the grace window the failure surfaces honestly instead.
            clock.advance(601.0)
            with armed(FaultPlan.from_specs(["steiner_solve=fail"])):
                with pytest.raises(FaultInjectedError):
                    app.query(QueryOptions(query="machine learning"))
        finally:
            app.close(wait=False)

    def test_circuit_opens_then_recovers(self, resilience_app):
        app = resilience_app
        try:
            with armed(FaultPlan.from_specs(["steiner_solve=fail"])):
                rejected = None
                for attempt in range(5):
                    try:
                        app.query(
                            QueryOptions(
                                query=f"machine learning circuit probe {attempt}", use_cache=False
                            )
                        )
                    except CircuitOpenError as exc:
                        rejected = exc
                        break
                    except FaultInjectedError:
                        continue
                assert rejected is not None, "circuit never opened"
                assert rejected.retry_after_seconds >= 1
            health = app.health("main")
            assert health["circuit"]["state"] == "open"
            assert app.events.tail(event="circuit_open")
            metrics = app.registry.get("main").service.metrics
            assert metrics.counter("circuit_open_total") >= 1

            time.sleep(0.3)  # past the cooldown: a half-open probe may pass
            self._close_breaker(app)
            assert app.health("main")["circuit"]["state"] == "closed"
            assert app.events.tail(event="circuit_close")
        finally:
            self._close_breaker(app)

    def test_shed_probe_does_not_wedge_the_circuit(self, resilience_app):
        """Regression: a half-open probe whose outcome is excluded (here a
        deadline shed) must release the probe slot; before the fix the
        breaker stayed half-open rejecting the tenant's traffic forever."""
        app = resilience_app
        try:
            with armed(FaultPlan.from_specs(["steiner_solve=fail"])):
                for attempt in range(5):
                    try:
                        app.query(
                            QueryOptions(
                                query=f"machine learning wedge {attempt}",
                                use_cache=False,
                            )
                        )
                    except CircuitOpenError:
                        break
                    except FaultInjectedError:
                        continue
            assert app.health("main")["circuit"]["state"] == "open"

            time.sleep(0.3)  # cooldown over: the next request is the probe...
            with pytest.raises(DeadlineExceededError):
                app.query(
                    QueryOptions(
                        query="machine learning wedged probe", use_cache=False
                    ),
                    deadline=time.monotonic() - 0.01,  # ...and it is shed
                )
            # The shed said nothing about tenant health; the slot is released
            # and the very next request probes successfully.
            response = app.query(
                QueryOptions(query="machine learning probe after shed", use_cache=False)
            )
            assert response.degraded is False
            assert app.health("main")["circuit"]["state"] == "closed"
        finally:
            self._close_breaker(app)

    def test_fault_firings_feed_the_advertised_metric(self, resilience_app):
        """``faults_injected_total`` moves when a rule fires (review fix)."""
        app = resilience_app
        before = app.metrics.counter("faults_injected_total")
        try:
            app.arm_faults(["steiner_solve=fail:@1"])
            # First call fails (fired), the in-worker retry succeeds.
            response = app.query(
                QueryOptions(query="machine learning fault metric", use_cache=False)
            )
            assert response.degraded is False
        finally:
            app.disarm_faults()
            self._close_breaker(app)
        assert app.metrics.counter("faults_injected_total") == before + 1
        assert "repager_faults_injected_total" in app.metrics_text()

    def test_default_config_performs_the_documented_retry(self, small_store):
        """Regression: ``retry_attempts`` counts *retries* — the default (1)
        must actually retry a transient fault instead of surfacing it."""
        app = RePaGerApp(
            config=ServingConfig(
                port=0,
                max_workers=1,
                retry_backoff_seconds=0.01,
                circuit_failure_threshold=None,
                obs=ObsConfig(trace_sample_rate=0.0),
            ),
            pipeline_config=PIPELINE,
        )
        try:
            app.attach_store("main", small_store, default=True)
            with armed(FaultPlan.from_specs(["steiner_solve=fail:@1"])):
                response = app.query(
                    QueryOptions(query="machine learning default retry", use_cache=False)
                )
            assert response.degraded is False
            tenant_metrics = app.registry.get("main").service.metrics
            assert tenant_metrics.counter("retries_total") == 1
        finally:
            app.close(wait=False)

    def test_tenant_deadline_override_sheds_slow_solves(self, resilience_app):
        app = resilience_app
        with armed(FaultPlan.from_specs(["worker=delay:0.4"])):
            with pytest.raises(DeadlineExceededError) as err:
                app.query(
                    QueryOptions(query="machine learning deadline override", use_cache=False),
                    corpus="bounded",
                )
        assert err.value.stage
        # Deadline sheds measure client patience, not tenant health: the
        # breaker must stay closed.
        assert app.health("bounded")["circuit"]["state"] == "closed"

    def test_trace_sampling_rates_and_overrides(self, resilience_app):
        app = resilience_app
        before = {t.trace_id for t in app.tracer.recent(limit=500)}
        response = app.query(
            QueryOptions(query="machine learning unsampled ok", use_cache=False)
        )
        assert response.degraded is False
        after = {t.trace_id for t in app.tracer.recent(limit=500)}
        assert after == before  # sample rate 0: the ok trace is not stored

        app.query(QueryOptions(query="machine learning sampled", use_cache=False), corpus="sampled")
        sampled = app.tracer.recent(corpus="sampled", limit=10)
        assert sampled and "sampled" not in sampled[0].summary()

        with armed(FaultPlan.from_specs(["steiner_solve=fail"])):
            with pytest.raises(FaultInjectedError):
                app.query(
                    QueryOptions(query="machine learning unsampled failing", use_cache=False)
                )
        failed = app.tracer.recent(corpus="main", limit=10)
        assert failed and failed[0].status == "error"
        assert failed[0].summary()["sampled"] is False
        self._close_breaker(app)


# ---------------------------------------------------------------------------
# HTTP surface
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def http_clock():
    return FakeClock()


@pytest.fixture(scope="module")
def http_app(small_store, http_clock):
    cache = ResultCache(
        max_entries=256,
        ttl_seconds=60.0,
        clock=http_clock,
        stale_grace_seconds=3600.0,
    )
    app = RePaGerApp(
        config=ServingConfig(
            port=0,
            max_workers=2,
            queue_depth=8,
            query_timeout_seconds=30.0,
            default_corpus="alpha",
            stale_grace_seconds=3600.0,
            retry_attempts=2,
            retry_backoff_seconds=0.01,
            circuit_failure_threshold=3,
            circuit_reset_seconds=0.25,
            allow_fault_injection=True,
        ),
        cache=cache,
        pipeline_config=PIPELINE,
    )
    app.attach_store("alpha", small_store, default=True)
    app.attach_store("beta", CorpusGenerator(BETA_CORPUS_CONFIG).generate().store)
    warm_up_registry(app.registry)
    yield app
    app.close(wait=False)


@pytest.fixture(scope="module")
def http_server(http_app):
    server = create_server(http_app, config=http_app.config)
    thread = start_in_background(server)
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _request(server, method, path, body=None, headers=None):
    """(status, parsed body, headers) — HTTPError bodies are parsed too."""
    data = None
    request_headers = dict(headers or {})
    if body is not None:
        data = body if isinstance(body, bytes) else json.dumps(body).encode()
        request_headers.setdefault("Content-Type", "application/json")
    request = urllib.request.Request(
        server.url + path, data=data, method=method, headers=request_headers
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def _request_text(server, path):
    with urllib.request.urlopen(server.url + path, timeout=60) as response:
        return response.status, response.read().decode("utf-8")


class TestFaultSurfaceHTTP:
    def test_fault_surface_is_hidden_unless_enabled(self):
        hidden = RePaGerApp(config=ServingConfig(port=0, max_workers=1))
        server = create_server(hidden, config=hidden.config)
        thread = start_in_background(server)
        try:
            for method, body in (
                ("GET", None),
                ("POST", {"faults": ["steiner_solve=fail"]}),
                ("DELETE", None),
            ):
                status, payload, _ = _request(server, method, "/v1/faults", body)
                assert status == 404, method
                assert payload["code"] == "not_found"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            hidden.close(wait=False)

    def test_arm_inspect_disarm_cycle(self, http_server):
        status, body, _ = _request(http_server, "GET", "/v1/faults")
        assert status == 200
        assert body["armed"] is False
        assert body["allow_fault_injection"] is True

        status, body, _ = _request(
            http_server,
            "POST",
            "/v1/faults",
            {"faults": ["steiner_solve=fail:0.5"], "seed": 42},
        )
        assert status == 200
        assert body["armed"] is True
        assert body["plan"]["rules"] == ["steiner_solve=fail:0.5"]
        assert body["plan"]["seed"] == 42

        status, body, _ = _request(http_server, "GET", "/v1/faults")
        assert status == 200 and body["armed"] is True

        status, body, _ = _request(http_server, "DELETE", "/v1/faults")
        assert status == 200 and body["armed"] is False

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"faults": []},
            {"faults": "steiner_solve=fail"},
            {"faults": ["steiner_solve=fail"], "seed": True},
            {"faults": ["steiner_solve=fail"], "extra": 1},
            {"faults": ["nosuchpoint=fail"]},
        ],
    )
    def test_malformed_arm_bodies_are_rejected(self, http_server, body):
        status, payload, _ = _request(http_server, "POST", "/v1/faults", body)
        assert status == 400
        assert _request(http_server, "GET", "/v1/faults")[1]["armed"] is False


class TestResilienceHTTP:
    def test_invalid_deadline_header_is_a_client_error(self, http_server):
        for raw in ("abc", "-1", "0", "inf", "nan"):
            status, body, _ = _request(
                http_server,
                "POST",
                "/v1/corpora/alpha/query",
                {"query": "machine learning"},
                headers={"X-Request-Deadline": raw},
            )
            assert status == 400, raw
            assert body["code"] == "bad_request"

    def test_generous_deadline_header_is_honoured(self, http_server):
        status, body, _ = _request(
            http_server,
            "POST",
            "/v1/corpora/alpha/query",
            {"query": "machine learning", "use_cache": False},
            headers={"X-Request-Deadline": "30"},
        )
        assert status == 200
        assert "degraded" not in body["serving"]

    def test_over_budget_request_is_shed_with_504(self, http_server):
        try:
            _request(http_server, "POST", "/v1/faults", {"faults": ["worker=delay:0.4"]})
            status, body, headers = _request(
                http_server,
                "POST",
                "/v1/corpora/alpha/query",
                {"query": "machine learning deadline http", "use_cache": False},
                headers={"X-Request-Deadline": "0.05"},
            )
        finally:
            _request(http_server, "DELETE", "/v1/faults")
        assert status == 504
        assert body["code"] == "deadline_exceeded"
        assert body["stage"]
        assert "Retry-After" in headers  # every 5xx carries honest backpressure

    def test_degraded_serve_carries_warning_header(self, http_server, http_clock):
        query = {"query": "machine learning stale http"}
        status, fresh, headers = _request(
            http_server, "POST", "/v1/corpora/alpha/query", query
        )
        assert status == 200
        assert "Warning" not in headers
        http_clock.advance(61.0)  # expire the entry into the grace window
        try:
            _request(
                http_server, "POST", "/v1/faults", {"faults": ["steiner_solve=fail"]}
            )
            status, body, headers = _request(
                http_server, "POST", "/v1/corpora/alpha/query", query
            )
        finally:
            _request(http_server, "DELETE", "/v1/faults")
        assert status == 200
        serving = body["serving"]
        assert serving["degraded"] is True
        assert serving["degraded_reason"] == "fault_injected"
        assert serving["cached"] is True
        assert headers["Warning"].startswith('110 repager "stale payload served')
        assert body["payload"] == fresh["payload"]
        # Close alpha's breaker again (the degraded serve still counted the
        # underlying solve failure).
        status, _, _ = _request(
            http_server,
            "POST",
            "/v1/corpora/alpha/query",
            {"query": "machine learning breaker reset http", "use_cache": False},
        )
        assert status == 200

    def test_circuit_breaker_over_http(self, http_server, http_app):
        _request(
            http_server, "POST", "/v1/faults", {"faults": ["steiner_solve=fail"]}
        )
        try:
            opened = False
            for attempt in range(5):
                status, body, headers = _request(
                    http_server,
                    "POST",
                    "/v1/corpora/beta/query",
                    {"query": f"machine learning beta probe {attempt}", "use_cache": False},
                )
                assert "Retry-After" in headers
                if status == 503 and body["code"] == "circuit_open":
                    opened = True
                    break
                assert status == 500
                assert body["code"] == "fault_injected"
                assert body["retryable"] is True
            assert opened, "circuit never opened over HTTP"
            status, detail, _ = _request(http_server, "GET", "/v1/corpora/beta")
            assert detail["circuit"]["state"] == "open"
        finally:
            _request(http_server, "DELETE", "/v1/faults")
        time.sleep(0.3)
        status, body, _ = _request(
            http_server,
            "POST",
            "/v1/corpora/beta/query",
            {"query": "machine learning beta recovery", "use_cache": False},
        )
        assert status == 200
        status, detail, _ = _request(http_server, "GET", "/v1/corpora/beta")
        assert detail["circuit"]["state"] == "closed"
        assert http_app.events.tail(event="circuit_open", corpus="beta")
        assert http_app.events.tail(event="circuit_close", corpus="beta")

    def test_chaos_flood_has_honest_failure_semantics(self, http_server):
        """Seeded two-tenant flood: every response is a success (possibly
        degraded) or a taxonomy failure with ``Retry-After``; after disarm
        the payloads are byte-identical to the pre-fault goldens."""
        queries = ("machine learning", "information retrieval", "deep learning")
        goldens = {}
        for corpus in ("alpha", "beta"):
            status, body, _ = _request(
                http_server,
                "POST",
                f"/v1/corpora/{corpus}/query",
                {"query": "machine learning chaos golden", "use_cache": False},
            )
            assert status == 200
            goldens[corpus] = canonical_payload(body["payload"])

        allowed_failures = {
            "fault_injected",
            "circuit_open",
            "timeout",
            "deadline_exceeded",
            "worker_hung",
            "overloaded",
        }
        _request(
            http_server,
            "POST",
            "/v1/faults",
            {"faults": ["steiner_solve=fail:0.5"], "seed": 42},
        )
        try:
            for i in range(30):
                corpus = ("alpha", "beta")[i % 2]
                status, body, headers = _request(
                    http_server,
                    "POST",
                    f"/v1/corpora/{corpus}/query",
                    {"query": queries[i % len(queries)], "use_cache": i % 3 != 0},
                )
                if status == 200:
                    continue
                assert status >= 429, (status, body)
                assert body["code"] in allowed_failures, body
                assert "Retry-After" in headers, body
        finally:
            _request(http_server, "DELETE", "/v1/faults")

        # Health stays reachable and structured throughout.
        status, health, _ = _request(http_server, "GET", "/healthz")
        assert status in (200, 503)
        assert "corpora" in health or "status" in health

        time.sleep(0.3)  # let any opened circuit reach half-open
        for corpus in ("alpha", "beta"):
            recovered = None
            for _ in range(10):
                status, body, _ = _request(
                    http_server,
                    "POST",
                    f"/v1/corpora/{corpus}/query",
                    {"query": "machine learning chaos golden", "use_cache": False},
                )
                if status == 200:
                    recovered = body
                    break
                time.sleep(0.1)
            assert recovered is not None, f"{corpus} never recovered"
            assert "degraded" not in recovered["serving"]
            assert canonical_payload(recovered["payload"]) == goldens[corpus]

    def test_metrics_expose_resilience_counters(self, http_server):
        status, text = _request_text(http_server, "/v1/metrics")
        assert status == 200
        for name in (
            "degraded_served_total",
            "circuit_open_total",
            "retries_total",
        ):
            assert name in text, name
