"""Weighted fair scheduling + in-flight coalescing in :class:`BatchExecutor`.

Two serving-layer defects under the paper's interactive-web-app load model
are covered here:

* **FIFO starvation** — one flooding tenant used to monopolise the worker
  pool's single FIFO.  The deficit-round-robin dispatcher must interleave a
  quiet tenant's requests within one scheduling round of the pool, no matter
  how deep the flooder's backlog is, and a ``weight=W`` tenant must receive
  ``W`` dispatches per round for each dispatch of a weight-1 tenant.
* **duplicate-solve stampede** — N identical concurrent queries used to run
  N full pipeline solves (the result cache only helps after the first
  completion).  With coalescing, concurrent duplicates attach to the
  in-flight leader's future: exactly one solve, N successful responses, and
  per-tenant ``coalesced_total`` accounting.

The deterministic tests gate the handler so scheduling arithmetic — not
thread timing — decides every ordering assertion.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import pytest

from repro.config import ServingConfig, TenantOverrides, TenantQuota
from repro.serving import BatchExecutor, MetricsRegistry, QueryRequest, parse_metrics_text
from repro.repager.app import RePaGerApp


class StubService:
    """Instant (or gated) canned answers; records handler-entry order."""

    def __init__(self, gate=None, log=None, label=""):
        self.gate = gate
        self.log = log
        self.label = label
        self.metrics = None  # assigned by attach_service
        self.cache = None
        self.cache_namespace = ""
        self.cache_ttl_seconds = None
        self.pipeline = SimpleNamespace(config_fingerprint="stub-fingerprint")
        self.store = ()
        self.graph = SimpleNamespace(num_nodes=0, num_edges=0)
        self.calls: list[str] = []
        self.entered = threading.Event()
        self._call_lock = threading.Lock()

    def readiness(self):
        return {"graph_backend": "stub", "stub_ready": True}

    def query_with_meta(self, text, year_cutoff=None, exclude_ids=(), use_cache=True):
        with self._call_lock:
            self.calls.append(text)
        if self.log is not None:
            self.log.append(self.label)
        self.entered.set()
        if self.gate is not None:
            assert self.gate.wait(timeout=30.0), "test gate never opened"
        return {"query": text}, False


class _AppendLog:
    """Thread-safe append-only list shared by several stub services."""

    def __init__(self):
        self._items: list[str] = []
        self._lock = threading.Lock()

    def append(self, item: str) -> None:
        with self._lock:
            self._items.append(item)

    def items(self) -> list[str]:
        with self._lock:
            return list(self._items)


def _wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


def _spawn(target, count):
    threads = [threading.Thread(target=target, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    return threads


def _join_all(threads, timeout=30.0):
    for thread in threads:
        thread.join(timeout=timeout)
        assert not thread.is_alive(), "worker thread leaked"


class TestDeficitRoundRobin:
    def test_weighted_dispatch_order_is_deterministic(self):
        """One worker, backlog built while it is blocked: a weight-3 tenant
        gets exactly 3 consecutive dispatches per round against a weight-1
        tenant — the literal DRR schedule, observed via handler entry order."""
        order: list[str] = []
        started = threading.Event()
        release = threading.Event()

        def handler(request):
            if request.text == "blocker":
                started.set()
                assert release.wait(timeout=30)
                return "ok"
            order.append(request.corpus)
            return "ok"

        executor = BatchExecutor(handler, max_workers=1, queue_depth=16)
        try:
            executor.configure_tenant("heavy", weight=3)
            executor.configure_tenant("light", weight=1)
            futures = [executor.submit(QueryRequest(text="blocker", corpus="heavy"))]
            assert started.wait(timeout=10)
            # Backlog built in submission order while the worker is blocked.
            for index in range(6):
                futures.append(
                    executor.submit(QueryRequest(text=f"h{index}", corpus="heavy"))
                )
            for index in range(2):
                futures.append(
                    executor.submit(QueryRequest(text=f"l{index}", corpus="light"))
                )
            release.set()
            for future in futures:
                assert future.result(timeout=30) == "ok"
        finally:
            release.set()
            executor.shutdown(wait=True)
        # Round 1: heavy spends 3 credits, light 1; round 2: the same.
        assert order == [
            "heavy", "heavy", "heavy", "light",
            "heavy", "heavy", "heavy", "light",
        ]

    def test_default_weights_alternate_fairly(self):
        """Equal weights degrade to plain round-robin across namespaces."""
        order: list[str] = []
        started = threading.Event()
        release = threading.Event()

        def handler(request):
            if request.text == "blocker":
                started.set()
                assert release.wait(timeout=30)
                return "ok"
            order.append(request.corpus)
            return "ok"

        executor = BatchExecutor(handler, max_workers=1, queue_depth=16)
        try:
            futures = [executor.submit(QueryRequest(text="blocker", corpus="a"))]
            assert started.wait(timeout=10)
            for index in range(3):
                futures.append(executor.submit(QueryRequest(text=f"a{index}", corpus="a")))
            for index in range(3):
                futures.append(executor.submit(QueryRequest(text=f"b{index}", corpus="b")))
            release.set()
            for future in futures:
                assert future.result(timeout=30) == "ok"
        finally:
            release.set()
            executor.shutdown(wait=True)
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_configure_tenant_rejects_bad_weight(self):
        executor = BatchExecutor(lambda request: "ok", max_workers=1)
        try:
            with pytest.raises(ValueError):
                executor.configure_tenant("t", weight=0)
        finally:
            executor.shutdown(wait=True)

    def test_quiet_tenant_interleaves_under_eight_worker_flood(self):
        """The tenant-stress scenario: 8 workers saturated by a flooding
        tenant with a 40-deep backlog.  A quiet tenant's two requests must be
        dispatched on the very next scheduling round — not behind the backlog
        as the old FIFO did (they would have been the last two dispatches).

        Dispatch order is observed by wrapping ``_pop_next``, which runs with
        the scheduler lock held, so the recorded order *is* the DRR schedule —
        exact, with no worker-thread racing between pop and record."""
        flood_gate = threading.Event()
        log = _AppendLog()
        app = RePaGerApp(
            config=ServingConfig(
                port=0, max_workers=8, queue_depth=64, query_timeout_seconds=60.0
            )
        )
        pops: list[str] = []
        original_pop = app.executor._pop_next

        def recording_pop():
            item = original_pop()
            if item is not None:
                pops.append(item.request.corpus)
            return item

        app.executor._pop_next = recording_pop
        try:
            app.attach_service(
                "flood", StubService(gate=flood_gate, log=log, label="flood"),
                default=True,
            )
            app.attach_service("quiet", StubService(log=log, label="quiet"))

            flood_threads = _spawn(
                lambda i: app.query(f"flood query {i}", corpus="flood"), 48
            )
            # 8 floods occupy every worker; 40 wait in the scheduler queue.
            assert _wait_until(
                lambda: app.executor.tenant_usage("flood")["executing"] == 8
            )
            assert _wait_until(
                lambda: app.executor.scheduler_info("flood")["queue_depth"] == 40
            )
            quiet_threads = _spawn(
                lambda i: app.query(f"quiet query {i}", corpus="quiet"), 2
            )
            assert _wait_until(
                lambda: app.executor.scheduler_info("quiet")["queue_depth"] == 2
            )
            flood_gate.set()
            _join_all(flood_threads + quiet_threads)

            assert log.items().count("quiet") == 2  # both actually answered
            assert len(pops) == 50
            # Pops 0-7 are the floods that seized the idle workers.  From
            # there the ring alternates flood/quiet until quiet's two-deep
            # queue drains: quiet is dispatched 2nd and 4th among the 42
            # backlogged requests, 38 flooded dispatches ahead of where the
            # old FIFO would have put it.
            quiet_dispatches = [i for i, c in enumerate(pops) if c == "quiet"]
            assert quiet_dispatches == [9, 11], quiet_dispatches
            assert app.executor.tenant_usage("quiet")["rejected_total"] == 0
        finally:
            flood_gate.set()
            app.close(wait=False)


class TestCoalescing:
    def test_sixteen_identical_concurrent_queries_run_one_solve(self):
        """16 identical concurrent queries → exactly 1 pipeline solve, 16
        successful responses, 15 coalesced waiters charged to the tenant."""
        gate = threading.Event()
        spy = StubService(gate=gate)
        app = RePaGerApp(
            config=ServingConfig(
                port=0, max_workers=8, queue_depth=32, query_timeout_seconds=60.0
            )
        )
        try:
            app.attach_service("x", spy, default=True)
            responses: list = []
            lock = threading.Lock()

            def worker(index):
                response = app.query("Reading Path Generation", corpus="x")
                with lock:
                    responses.append(response)

            leader = _spawn(worker, 1)
            # The leader is inside the handler (blocked on the gate) before
            # any duplicate is submitted, so every follower must coalesce.
            assert spy.entered.wait(timeout=10)
            followers = _spawn(lambda i: worker(i + 1), 15)
            assert _wait_until(
                lambda: app.executor.scheduler_info("x")["coalesced_total"] == 15
            )
            gate.set()
            _join_all(leader + followers)

            assert len(spy.calls) == 1  # one solve for all sixteen callers
            assert len(responses) == 16
            assert all(r.payload == {"query": "Reading Path Generation"} for r in responses)
            assert all(r.corpus == "x" for r in responses)

            info = app.executor.scheduler_info("x")
            assert info == {"weight": 1, "queue_depth": 0, "coalesced_total": 15}
            assert app.metrics.counter("executor_coalesced_total") == 15
            assert app.metrics.counter("executor_submitted_total") == 16
            assert app.metrics.counter("executor_completed_total") == 16
            series = parse_metrics_text(app.metrics_text())
            label = (("corpus", "x"),)
            assert series["repager_coalesced_total"][label] == 15
            assert series["repager_quota_admitted_total"][label] == 16
            assert series["repager_scheduler_queue_depth"][label] == 0
            assert series["repager_scheduler_queue_depth"][()] == 0
            # All tenant admission charges drained with the shared solve.
            assert app.executor.tenant_usage("x")["admitted"] == 0
        finally:
            gate.set()
            app.close(wait=False)

    def test_coalescing_respects_cache_key_boundaries(self):
        """Different tenants, texts, cutoffs or cache opt-outs never coalesce;
        case/whitespace variants of one query do (canonical cache key)."""
        gate = threading.Event()
        spy_x = StubService(gate=gate)
        spy_y = StubService(gate=gate)
        app = RePaGerApp(
            config=ServingConfig(
                port=0, max_workers=8, queue_depth=32, query_timeout_seconds=60.0
            )
        )
        try:
            app.attach_service("x", spy_x, default=True)
            app.attach_service("y", spy_y)
            threads = []
            threads += _spawn(lambda i: app.query("graph mining", corpus="x"), 1)
            assert spy_x.entered.wait(timeout=10)
            # Canonicalised duplicate of the in-flight query: coalesces.
            threads += _spawn(lambda i: app.query("Graph  MINING", corpus="x"), 1)
            assert _wait_until(
                lambda: app.executor.scheduler_info("x")["coalesced_total"] == 1
            )
            # Same text, different tenant: its own solve.
            threads += _spawn(lambda i: app.query("graph mining", corpus="y"), 1)
            # Different cutoff: its own solve.
            threads += _spawn(
                lambda i: app.query(
                    {"query": "graph mining", "year_cutoff": 2015}, corpus="x"
                ),
                1,
            )
            # use_cache=False demands a fresh run: never coalesces.
            threads += _spawn(
                lambda i: app.query(
                    {"query": "graph mining", "use_cache": False}, corpus="x"
                ),
                1,
            )
            assert _wait_until(lambda: len(spy_x.calls) + len(spy_y.calls) == 4)
            gate.set()
            _join_all(threads)
            assert len(spy_x.calls) == 3  # leader + cutoff + no-cache
            assert len(spy_y.calls) == 1
            assert app.executor.scheduler_info("x")["coalesced_total"] == 1
            assert app.executor.scheduler_info("y")["coalesced_total"] == 0
        finally:
            gate.set()
            app.close(wait=False)

    def test_leader_failure_propagates_to_every_waiter(self):
        """A failed shared solve fails every coalesced caller, and each
        failure is counted where ``result()`` observes it."""
        gate = threading.Event()
        entered = threading.Event()
        calls: list[str] = []

        def handler(request):
            calls.append(request.text)
            entered.set()
            assert gate.wait(timeout=30)
            raise RuntimeError("solver exploded")

        metrics = MetricsRegistry()
        executor = BatchExecutor(
            handler,
            max_workers=2,
            metrics=metrics,
            key_for=lambda request: (request.corpus, request.text.lower()),
        )
        try:
            leader = executor.submit(QueryRequest(text="Topic", corpus="t"))
            assert entered.wait(timeout=10)
            follower = executor.submit(QueryRequest(text="topic", corpus="t"))
            gate.set()
            for future in (leader, follower):
                with pytest.raises(RuntimeError):
                    executor.result(QueryRequest(text="topic", corpus="t"), future)
            assert calls == ["Topic"]
            assert metrics.counter("executor_submitted_total") == 2
            assert metrics.counter("executor_coalesced_total") == 1
            assert metrics.counter("executor_errors_total") == 2
            assert metrics.counter("executor_completed_total") == 0
        finally:
            gate.set()
            executor.shutdown(wait=True)

    def test_completed_solves_do_not_coalesce_later_requests(self):
        """Coalescing is strictly *in-flight*: once the leader resolves, a
        new identical request runs its own solve (freshness is the cache's
        job, and these executors have no cache)."""
        calls: list[str] = []
        executor = BatchExecutor(
            lambda request: calls.append(request.text) or "ok",
            max_workers=2,
            key_for=lambda request: (request.corpus, request.text),
        )
        try:
            assert executor.run_one(QueryRequest(text="q", corpus="t")) == "ok"
            assert executor.run_one(QueryRequest(text="q", corpus="t")) == "ok"
            assert calls == ["q", "q"]
        finally:
            executor.shutdown(wait=True)

    def test_run_batch_coalesces_against_inflight_leader(self):
        """Batch members also attach to an identical in-flight solve instead
        of consuming global queue slots."""
        gate = threading.Event()
        entered = threading.Event()
        calls: list[str] = []

        def handler(request):
            calls.append(request.text)
            entered.set()
            assert gate.wait(timeout=30)
            return request.text

        metrics = MetricsRegistry()
        executor = BatchExecutor(
            handler,
            max_workers=1,
            queue_depth=0,  # one slot total: duplicates must not need one
            metrics=metrics,
            key_for=lambda request: (request.corpus, request.text),
        )
        try:
            leader = executor.submit(QueryRequest(text="q", corpus="t"))
            assert entered.wait(timeout=10)
            threading.Timer(0.1, gate.set).start()
            outcomes = executor.run_batch(
                [QueryRequest(text="q", corpus="t"), QueryRequest(text="q", corpus="t")]
            )
            assert [outcome.ok for outcome in outcomes] == [True, True]
            assert all(outcome.payload == "q" for outcome in outcomes)
            assert executor.result(QueryRequest(text="q", corpus="t"), leader) == "q"
            assert calls == ["q"]
            assert metrics.counter("executor_coalesced_total") == 2
        finally:
            gate.set()
            executor.shutdown(wait=True)


class TestSchedulerExposure:
    def test_health_reports_weight_and_coalescing(self):
        app = RePaGerApp(
            config=ServingConfig(port=0, max_workers=2, query_timeout_seconds=60.0)
        )
        try:
            app.attach_service(
                "vip",
                StubService(),
                default=True,
                overrides=TenantOverrides(
                    weight=4, quota=TenantQuota(max_in_flight=8)
                ),
            )
            app.query("hello", corpus="vip")
            report = app.health("vip")
            assert report["scheduler"] == {
                "weight": 4,
                "queue_depth": 0,
                "coalesced_total": 0,
            }
            assert report["overrides"]["weight"] == 4
            assert report["quota_usage"]["queued"] == 0
        finally:
            app.close(wait=False)

    def test_scheduler_series_render_with_help_text(self):
        app = RePaGerApp(
            config=ServingConfig(port=0, max_workers=2, query_timeout_seconds=60.0)
        )
        try:
            app.attach_service("x", StubService(), default=True)
            app.query("hello", corpus="x")
            text = app.metrics_text()
            assert 'repager_scheduler_queue_depth{corpus="x"}' in text
            assert "# HELP repager_scheduler_queue_depth Admitted requests" in text
            series = parse_metrics_text(text)
            assert series["repager_scheduler_wait_seconds_count"][(("corpus", "x"),)] == 1
        finally:
            app.close(wait=False)

    def test_scheduler_wait_span_is_recorded(self):
        app = RePaGerApp(
            config=ServingConfig(port=0, max_workers=2, query_timeout_seconds=60.0)
        )
        try:
            app.attach_service("x", StubService(), default=True)
            response = app.query({"query": "hello", "debug": True}, corpus="x")
            spans = {span["name"] for span in response.trace["spans"]}
            assert "scheduler_wait" in spans
            assert "queue_wait" in spans
        finally:
            app.close(wait=False)
