"""Golden regression: frozen top-K reading paths for all Table III variants.

Each fixture under ``tests/golden/`` freezes the reading-path output of one
NEWST variant on the deterministic synthetic corpus.  The tests recompute the
paths with *both* graph backends and diff them against the fixtures, which
pins down two properties at once:

1. regression safety — any behavioural change to the pipeline (kernels, cost
   model, ranking, reallocation) produces a visible fixture diff;
2. backend equivalence — the indexed CSR backend must reproduce the dict
   backend's output byte for byte, per variant and per query.

Fixtures are regenerated with ``PYTHONPATH=src python scripts/regen_golden.py``
(see ``tests/golden/README.md``); only re-freeze when output is *supposed* to
change, and commit the diff with the change that caused it.
"""

from __future__ import annotations

import json

import pytest

from golden_utils import (
    GOLDEN_QUERIES,
    GOLDEN_VARIANTS,
    compute_all_payloads,
    fixture_path,
)


@pytest.fixture(scope="module")
def golden_payloads(store, scholar_engine, citation_graph):
    """Recomputed payloads per backend (node weights shared across variants)."""
    return {
        backend: compute_all_payloads(
            store, scholar_engine, citation_graph, graph_backend=backend
        )
        for backend in ("dict", "indexed")
    }


def load_fixture(variant: str) -> dict:
    path = fixture_path(variant)
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with "
        "`PYTHONPATH=src python scripts/regen_golden.py`"
    )
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("variant", GOLDEN_VARIANTS)
@pytest.mark.parametrize("backend", ("dict", "indexed"))
def test_variant_matches_golden_fixture(golden_payloads, variant, backend):
    """Both backends reproduce the frozen fixture for every variant."""
    assert golden_payloads[backend][variant] == load_fixture(variant)


@pytest.mark.parametrize("variant", GOLDEN_VARIANTS)
def test_backends_byte_identical(golden_payloads, variant):
    """The indexed backend's reading paths equal the dict backend's exactly.

    This is stronger than both matching the fixture: it also compares the
    payloads as serialised bytes, so a fixture regeneration can never paper
    over a backend divergence.
    """
    dict_payload = golden_payloads["dict"][variant]
    indexed_payload = golden_payloads["indexed"][variant]
    assert dict_payload == indexed_payload
    assert json.dumps(dict_payload, sort_keys=True) == json.dumps(
        indexed_payload, sort_keys=True
    )


def test_fixtures_cover_all_variants_and_queries():
    for variant in GOLDEN_VARIANTS:
        fixture = load_fixture(variant)
        assert set(fixture["queries"]) == set(GOLDEN_QUERIES)
        for query, payload in fixture["queries"].items():
            assert payload["top_k"], f"{variant}/{query} froze an empty reading path"
            assert payload["terminals"], f"{variant}/{query} froze no terminals"
