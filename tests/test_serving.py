"""Unit tests for the serving layer: cache, metrics, warm-up, executor, HTTP API."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.config import PipelineConfig, ServingConfig
from repro.errors import (
    ExecutorOverloadedError,
    QueryTimeoutError,
    ServingError,
    SnapshotMismatchError,
    UnknownFieldsError,
)
from repro.graph.citation_graph import CitationGraph
from repro.repager.service import RePaGerService
from repro.search.scholar import GoogleScholarEngine
from repro.serving import (
    ArtifactSnapshot,
    BatchExecutor,
    LatencyHistogram,
    MetricsRegistry,
    QueryRequest,
    ResultCache,
    create_server,
    make_query_key,
    normalize_query,
    percentile,
    start_in_background,
    warm_up,
)
from repro.serving.metrics import parse_metrics_text


def canonical_payload(payload) -> dict:
    """Payload dict with the wall-clock timing stripped (run-to-run noise)."""
    data = payload.to_dict()
    data["stats"] = {k: v for k, v in data["stats"].items() if k != "elapsed_seconds"}
    return data


@pytest.fixture(scope="module")
def serving_service(store, scholar_engine, citation_graph, venues):
    service = RePaGerService(
        store,
        search_engine=scholar_engine,
        pipeline_config=PipelineConfig(num_seeds=10),
        venues=venues,
        graph=citation_graph,
        cache=ResultCache(max_entries=32, ttl_seconds=600.0),
        metrics=MetricsRegistry(),
    )
    warm_up(service)
    return service


class TestQueryKey:
    def test_normalization_collapses_case_and_whitespace(self):
        assert normalize_query("  Deep   LEARNING ") == "deep learning"

    def test_equivalent_requests_share_a_key(self):
        a = make_query_key("Deep  Learning", 2015, ("P2", "P1"), "abc")
        b = make_query_key("deep learning", 2015, ("P1", "P2", "P1"), "abc")
        assert a == b

    def test_distinct_requests_get_distinct_keys(self):
        base = make_query_key("deep learning", None, (), "abc")
        assert make_query_key("deep learning", 2015, (), "abc") != base
        assert make_query_key("deep learning", None, ("P1",), "abc") != base
        assert make_query_key("deep learning", None, (), "other") != base
        assert make_query_key("shallow learning", None, (), "abc") != base


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(max_entries=4, ttl_seconds=60.0)
        key = make_query_key("q", None, (), "f")
        assert cache.get(key) is None
        cache.put(key, "value")
        assert cache.get(key) == "value"
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_drops_least_recently_used(self):
        cache = ResultCache(max_entries=2, ttl_seconds=60.0)
        k1, k2, k3 = (make_query_key(q, None, (), "f") for q in ("a", "b", "c"))
        cache.put(k1, 1)
        cache.put(k2, 2)
        assert cache.get(k1) == 1  # refresh k1 -> k2 becomes LRU
        cache.put(k3, 3)
        assert cache.get(k2) is None
        assert cache.get(k1) == 1
        assert cache.get(k3) == 3
        assert cache.stats().evictions == 1

    def test_ttl_expiry_with_injected_clock(self):
        now = [0.0]
        cache = ResultCache(max_entries=4, ttl_seconds=10.0, clock=lambda: now[0])
        key = make_query_key("q", None, (), "f")
        cache.put(key, "value")
        now[0] = 9.9
        assert cache.get(key) == "value"
        now[0] = 10.1
        assert cache.get(key) is None
        assert cache.stats().expirations == 1
        assert key not in cache

    def test_put_refreshes_existing_entry(self):
        cache = ResultCache(max_entries=2, ttl_seconds=60.0)
        key = make_query_key("q", None, (), "f")
        cache.put(key, "old")
        cache.put(key, "new")
        assert len(cache) == 1
        assert cache.get(key) == "new"

    def test_clear_preserves_counters(self):
        cache = ResultCache(max_entries=2, ttl_seconds=60.0)
        key = make_query_key("q", None, (), "f")
        cache.put(key, 1)
        cache.get(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_clear_and_drop_namespace_count_dropped_not_evicted(self):
        """Administrative removals must reconcile in ``dropped``, leaving the
        LRU ``evictions`` counter to mean capacity pressure only."""
        cache = ResultCache(max_entries=2, ttl_seconds=60.0)
        cache.put(make_query_key("a", None, (), "f", namespace="one"), 1)
        cache.put(make_query_key("b", None, (), "f", namespace="two"), 2)
        cache.put(make_query_key("c", None, (), "f", namespace="two"), 3)  # evicts LRU
        assert cache.stats().evictions == 1

        assert cache.drop_namespace("two") == 2
        stats = cache.stats()
        assert stats.dropped == 2
        assert stats.evictions == 1  # unchanged: no capacity pressure involved
        assert stats.size == 0

        cache.put(make_query_key("d", None, (), "f"), 4)
        cache.put(make_query_key("e", None, (), "f"), 5)
        cache.clear()
        stats = cache.stats()
        assert stats.dropped == 4
        assert stats.evictions == 1
        assert stats.to_dict()["dropped"] == 4


class TestMetrics:
    def test_percentile_interpolates(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 4.0
        assert percentile(samples, 0.5) == pytest.approx(2.5)
        assert percentile([], 0.5) == 0.0

    def test_histogram_summary(self):
        histogram = LatencyHistogram(max_samples=100)
        for value in (0.1, 0.2, 0.3, 0.4, 1.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 5
        assert summary["mean"] == pytest.approx(0.4)
        assert summary["p50"] == pytest.approx(0.3)
        assert summary["max"] == pytest.approx(1.0)
        assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]

    def test_histogram_window_is_bounded_but_count_is_exact(self):
        histogram = LatencyHistogram(max_samples=4)
        for index in range(10):
            histogram.observe(float(index))
        assert histogram.count == 10
        assert histogram.summary()["p50"] >= 6.0  # only recent samples remain

    def test_registry_counters_gauges_and_render(self):
        registry = MetricsRegistry()
        registry.increment("queries_total", 3)
        registry.gauge_add("in_flight", 2.0)
        registry.gauge_add("in_flight", -1.0)
        registry.observe("serve_seconds", 0.25)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["queries_total"] == 3
        assert snapshot["gauges"]["in_flight"] == 1.0
        assert snapshot["histograms"]["serve_seconds"]["count"] == 1
        text = registry.render_text(extra_gauges={"cache_hit_rate": 0.5})
        assert "repager_queries_total 3" in text
        assert "repager_cache_hit_rate 0.5" in text
        assert 'repager_serve_seconds{quantile="p95"}' in text

    def test_percentile_boundary_fractions(self):
        # A single sample answers every fraction.
        assert percentile([7.5], 0.0) == 7.5
        assert percentile([7.5], 0.5) == 7.5
        assert percentile([7.5], 1.0) == 7.5
        # Exact endpoints never interpolate past the data.
        samples = [1.0, 5.0, 9.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 9.0
        with pytest.raises(ValueError):
            percentile(samples, 1.5)
        with pytest.raises(ValueError):
            percentile(samples, -0.1)

    def test_render_text_emits_help_and_type_per_family(self):
        registry = MetricsRegistry()
        registry.increment("queries_total")
        registry.gauge_set("in_flight", 1.0)
        registry.observe("serve_seconds", 0.25)
        lines = registry.render_text().splitlines()
        assert "# HELP repager_queries_total Monotonic counter 'queries_total'." in lines
        assert "# TYPE repager_queries_total counter" in lines
        assert "# TYPE repager_in_flight gauge" in lines
        assert "# TYPE repager_serve_seconds summary" in lines
        # The non-standard windowed mean is typed as its own gauge family.
        assert "# TYPE repager_serve_seconds_mean gauge" in lines
        # HELP/TYPE precede the family's first sample line.
        type_index = lines.index("# TYPE repager_serve_seconds summary")
        sample_index = next(
            i for i, line in enumerate(lines)
            if line.startswith("repager_serve_seconds{")
        )
        assert type_index < sample_index
        # The summary exposes quantiles, _count and _sum series.
        assert any(line.startswith("repager_serve_seconds_count ") for line in lines)
        assert any(line.startswith("repager_serve_seconds_sum ") for line in lines)

    def test_parse_metrics_round_trips_render_text(self):
        registry = MetricsRegistry()
        registry.increment("queries_total", 3)
        registry.observe("serve_seconds", 0.5)
        parsed = parse_metrics_text(registry.render_text(labels={"corpus": "c1"}))
        labels = (("corpus", "c1"),)
        assert parsed["repager_queries_total"][labels] == 3.0
        assert parsed["repager_serve_seconds_count"][labels] == 1.0
        assert parsed["repager_serve_seconds_sum"][labels] == 0.5
        quantile = (("corpus", "c1"), ("quantile", "p50"))
        assert parsed["repager_serve_seconds"][quantile] == 0.5

    def test_parse_metrics_label_values_with_commas_and_quotes(self):
        registry = MetricsRegistry()
        registry.increment("queries_total", 2)
        tricky = 'corpus, "quoted" \\ and\nnewline'
        text = registry.render_text(labels={"corpus": tricky})
        # The exposition escapes the value; parsing restores it exactly.
        assert '\\"quoted\\"' in text
        assert "\\n" in text
        parsed = parse_metrics_text(text)
        assert parsed["repager_queries_total"][(("corpus", tricky),)] == 2.0

    def test_parse_metrics_quantile_label_ordering_is_canonical(self):
        # Label order in the text must not matter: keys are sorted pairs.
        text = (
            'repager_x{quantile="p50",corpus="a"} 1\n'
            'repager_x{corpus="a",quantile="p95"} 2\n'
        )
        parsed = parse_metrics_text(text)
        assert parsed["repager_x"][(("corpus", "a"), ("quantile", "p50"))] == 1.0
        assert parsed["repager_x"][(("corpus", "a"), ("quantile", "p95"))] == 2.0

    def test_parse_metrics_skips_comments_and_garbage(self):
        text = (
            "# HELP repager_a help text with spaces\n"
            "# TYPE repager_a counter\n"
            "\n"
            "repager_a 4\n"
            "repager_broken not-a-number\n"
        )
        parsed = parse_metrics_text(text)
        assert parsed == {"repager_a": {(): 4.0}}


class TestWarmup:
    def test_warm_up_report(self, serving_service):
        report = warm_up(serving_service)
        assert report.config_fingerprint == serving_service.pipeline.config_fingerprint
        assert report.graph_nodes == serving_service.graph.num_nodes
        assert report.pagerank_entries == report.graph_nodes
        assert not report.from_snapshot

    def test_warm_up_makes_first_query_cheap(self, store, scholar_engine,
                                             citation_graph, venues):
        service = RePaGerService(
            store,
            search_engine=scholar_engine,
            pipeline_config=PipelineConfig(num_seeds=10),
            venues=venues,
            graph=citation_graph,
        )
        assert service.pipeline._node_weights is None
        warm_up(service)
        assert service.pipeline._node_weights is not None

    def test_snapshot_roundtrip_and_restore(self, serving_service, store,
                                            scholar_engine, citation_graph,
                                            venues, tmp_path):
        snapshot = ArtifactSnapshot.capture(serving_service)
        path = tmp_path / "artifacts.json"
        snapshot.save(path)
        loaded = ArtifactSnapshot.load(path)
        assert loaded == snapshot

        fresh = RePaGerService(
            store,
            search_engine=scholar_engine,
            pipeline_config=PipelineConfig(num_seeds=10),
            venues=venues,
            graph=citation_graph,
        )
        report = warm_up(fresh, snapshot=loaded)
        assert report.from_snapshot
        expected = canonical_payload(
            serving_service.query("pretrained language models", use_cache=False)
        )
        restored = canonical_payload(
            fresh.query("pretrained language models", use_cache=False)
        )
        assert restored == expected

    def test_snapshot_restores_query_prep_indexes(self, serving_service, store,
                                                  citation_graph, venues):
        """A v2 snapshot primes the search index and the edge-relevance map,
        so a restored replica skips the corpus tokenisation pass and the
        predecessor intersections entirely."""
        snapshot = ArtifactSnapshot.capture(serving_service)
        assert snapshot.search_index is not None
        assert snapshot.edge_relevance

        fresh_engine = GoogleScholarEngine(store, venues=venues, backend="indexed")
        fresh = RePaGerService(
            store,
            search_engine=fresh_engine,
            pipeline_config=PipelineConfig(num_seeds=10),
            venues=venues,
            graph=citation_graph,
        )
        snapshot.restore_into(fresh)
        assert fresh_engine._fitted
        assert fresh_engine._postings is not None
        assert fresh.pipeline.weight_builder._edge_relevance is not None
        # The restored engine ranks exactly like the capture-side engine.
        assert fresh_engine.search_ids("image processing", top_k=10) == (
            serving_service.search_engine.search_ids("image processing", top_k=10)
        )

    def test_snapshot_rejects_config_drift(self, serving_service, store,
                                           scholar_engine, citation_graph, venues):
        snapshot = ArtifactSnapshot.capture(serving_service)
        drifted = RePaGerService(
            store,
            search_engine=scholar_engine,
            pipeline_config=PipelineConfig(num_seeds=11),
            venues=venues,
            graph=citation_graph,
        )
        with pytest.raises(SnapshotMismatchError):
            warm_up(drifted, snapshot=snapshot)

    def test_snapshot_rejects_corpus_mismatch(self, serving_service, store,
                                              scholar_engine, venues):
        """Same configuration, different corpus graph: the primed maps would
        miss this graph's keys, so restore must fail fast and loudly."""
        snapshot = ArtifactSnapshot.capture(serving_service)
        small_graph = CitationGraph.from_papers(list(store)[: len(store) // 2])
        other = RePaGerService(
            store,
            search_engine=scholar_engine,
            pipeline_config=PipelineConfig(num_seeds=10),
            venues=venues,
            graph=small_graph,
        )
        with pytest.raises(ServingError):
            warm_up(other, snapshot=snapshot)


class TestQueryRequest:
    def test_from_dict_roundtrip(self):
        request = QueryRequest.from_dict(
            {"query": "q", "year_cutoff": 2015, "exclude_ids": ["P1"], "use_cache": False}
        )
        assert request == QueryRequest("q", 2015, ("P1",), False)

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"query": ""},
            {"query": 42},
            {"query": "q", "year_cutoff": "2015"},
            {"query": "q", "year_cutoff": True},
            {"query": "q", "exclude_ids": "P1"},
            {"query": "q", "exclude_ids": [1]},
            {"query": "q", "use_cache": "yes"},
        ],
    )
    def test_from_dict_rejects_bad_bodies(self, body):
        with pytest.raises(ValueError):
            QueryRequest.from_dict(body)

    def test_from_dict_rejects_unknown_fields(self):
        """A typo like 'year_cutof' must 400, not silently run a wrong query."""
        with pytest.raises(UnknownFieldsError) as excinfo:
            QueryRequest.from_dict({"query": "q", "year_cutof": 2015})
        assert excinfo.value.fields == ("year_cutof",)
        assert excinfo.value.http_status == 400
        # The taxonomy error is still a ValueError for legacy call sites.
        assert isinstance(excinfo.value, ValueError)


class TestBatchExecutor:
    def test_run_batch_collects_payloads_and_errors(self):
        def handler(request: QueryRequest):
            if request.text == "boom":
                raise RuntimeError("bad query")
            return request.text.upper()

        metrics = MetricsRegistry()
        with BatchExecutor(handler, max_workers=2, metrics=metrics) as executor:
            outcomes = executor.run_batch(
                [QueryRequest("a"), QueryRequest("boom"), QueryRequest("b")]
            )
        assert [outcome.ok for outcome in outcomes] == [True, False, True]
        assert outcomes[0].payload == "A"
        assert "RuntimeError" in outcomes[1].error
        assert metrics.counter("executor_errors_total") == 1
        assert metrics.counter("executor_completed_total") == 2
        assert metrics.gauge("in_flight") == 0.0

    def test_run_one_error_increments_errors_total(self):
        """Regression: handler failures on the ``run_one``/HTTP path must land
        in ``executor_errors_total``, not only ``run_batch`` failures — the
        counter is reconciled against served 500s."""

        def handler(request: QueryRequest):
            raise RuntimeError("bad query")

        metrics = MetricsRegistry()
        with BatchExecutor(handler, max_workers=1, metrics=metrics) as executor:
            with pytest.raises(RuntimeError):
                executor.run_one(QueryRequest("boom"))
            assert metrics.counter("executor_errors_total") == 1
            assert metrics.counter("executor_completed_total") == 0

    def test_submit_rejects_when_queue_full(self):
        release = threading.Event()
        started = threading.Event()

        def handler(request: QueryRequest):
            started.set()
            release.wait(timeout=10)
            return request.text

        executor = BatchExecutor(handler, max_workers=1, queue_depth=1)
        try:
            first = executor.submit(QueryRequest("running"))
            assert started.wait(timeout=5)
            executor.submit(QueryRequest("queued"))
            with pytest.raises(ExecutorOverloadedError):
                executor.submit(QueryRequest("rejected"))
            release.set()
            assert first.result(timeout=5) == "running"
            # Slots free up after completion: admission works again.
            executor.submit(QueryRequest("after")).result(timeout=5)
        finally:
            release.set()
            executor.shutdown()

    def test_per_query_timeout(self):
        release = threading.Event()

        def handler(request: QueryRequest):
            release.wait(timeout=10)
            return request.text

        metrics = MetricsRegistry()
        executor = BatchExecutor(
            handler, max_workers=1, timeout_seconds=0.05, metrics=metrics
        )
        try:
            with pytest.raises(QueryTimeoutError):
                executor.run_one(QueryRequest("slow"))
            assert metrics.counter("executor_timeouts_total") == 1
        finally:
            release.set()
            executor.shutdown()

    def test_shutdown_rejects_new_work(self):
        executor = BatchExecutor(lambda request: request.text, max_workers=1)
        executor.shutdown()
        with pytest.raises(RuntimeError):
            executor.submit(QueryRequest("late"))


class TestHttpApi:
    @pytest.fixture(scope="class")
    def server(self, serving_service):
        server = create_server(
            serving_service,
            config=ServingConfig(port=0, max_workers=2, queue_depth=4,
                                 query_timeout_seconds=60.0),
        )
        thread = start_in_background(server)
        yield server
        server.shutdown()
        server.server_close()
        server.executor.shutdown(wait=False)
        thread.join(timeout=5)

    def _get(self, server, path: str):
        with urllib.request.urlopen(server.url + path, timeout=30) as response:
            return response.status, json.loads(response.read())

    def _post(self, server, path: str, body: bytes):
        request = urllib.request.Request(
            server.url + path, data=body, headers={"Content-Type": "application/json"}
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())

    def test_healthz(self, server, serving_service):
        status, body = self._get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["papers"] == len(serving_service.store)
        assert body["config_fingerprint"] == serving_service.pipeline.config_fingerprint

    def test_query_roundtrip_matches_service(self, server, serving_service):
        status, body = self._post(
            server, "/query", json.dumps({"query": "pretrained language models"}).encode()
        )
        assert status == 200
        assert body["served_in_seconds"] >= 0.0
        direct = serving_service.query("pretrained language models").to_dict()
        assert body["nodes"] == direct["nodes"]
        assert body["edges"] == direct["edges"]

    def test_paper_details_route(self, server, serving_service):
        paper_id = serving_service.store.paper_ids[0]
        status, body = self._get(server, f"/paper/{paper_id}")
        assert status == 200
        assert body["paper_id"] == paper_id

    def test_unknown_paper_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/paper/NOPE")
        assert excinfo.value.code == 404

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/bogus")
        assert excinfo.value.code == 404

    def test_malformed_body_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/query", b"not json")
        assert excinfo.value.code == 400

    def test_missing_query_field_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/query", json.dumps({"nope": 1}).encode())
        assert excinfo.value.code == 400

    def test_metrics_exposition(self, server):
        self._post(server, "/query", json.dumps({"query": "machine learning"}).encode())
        with urllib.request.urlopen(server.url + "/metrics", timeout=30) as response:
            assert response.status == 200
            text = response.read().decode()
        assert "repager_queries_total" in text
        assert "repager_cache_hit_rate" in text
        assert "repager_serve_seconds" in text
