"""Unit tests for the corpus store and S2ORC record conversion."""

from __future__ import annotations

import pytest

from repro.corpus.s2orc import (
    S2orcRecord,
    papers_to_s2orc,
    read_s2orc_jsonl,
    s2orc_to_papers,
    write_s2orc_jsonl,
)
from repro.corpus.storage import CorpusStore
from repro.errors import CorpusError, PaperNotFoundError
from repro.types import Paper, Survey


def _paper(pid: str, topic: str = "t", year: int = 2010, cites: tuple[str, ...] = ()) -> Paper:
    return Paper(paper_id=pid, title=f"paper {pid}", topic=topic, year=year,
                 outbound_citations=cites)


class TestCorpusStore:
    def test_add_and_get(self):
        store = CorpusStore([_paper("P1")])
        assert store.get_paper("P1").title == "paper P1"
        assert "P1" in store
        assert len(store) == 1

    def test_duplicate_paper_rejected(self):
        store = CorpusStore([_paper("P1")])
        with pytest.raises(CorpusError):
            store.add_paper(_paper("P1"))

    def test_missing_paper_raises(self):
        store = CorpusStore()
        with pytest.raises(PaperNotFoundError):
            store.get_paper("nope")

    def test_survey_requires_paper_record(self):
        store = CorpusStore()
        survey = Survey(paper_id="S1", title="s", year=2019, key_phrases=("x",),
                        reference_occurrences={"P1": 1})
        with pytest.raises(CorpusError):
            store.add_survey(survey)

    def test_topic_and_year_indexes(self):
        store = CorpusStore([_paper("P1", topic="a", year=2001),
                             _paper("P2", topic="a", year=2002),
                             _paper("P3", topic="b", year=2002)])
        assert {p.paper_id for p in store.papers_in_topic("a")} == {"P1", "P2"}
        assert {p.paper_id for p in store.papers_in_year(2002)} == {"P2", "P3"}
        assert {p.paper_id for p in store.papers_published_by(2001)} == {"P1"}

    def test_citation_counts_from_outbound_lists(self):
        store = CorpusStore([
            _paper("P1", cites=("P2", "P3")),
            _paper("P2", cites=("P3",)),
            _paper("P3"),
        ])
        counts = store.citation_counts()
        assert counts == {"P1": 0, "P2": 1, "P3": 2}

    def test_replace_paper_updates_indexes(self):
        store = CorpusStore([_paper("P1", topic="a", year=2001)])
        store.replace_paper(_paper("P1", topic="b", year=2005))
        assert store.papers_in_topic("a") == []
        assert [p.paper_id for p in store.papers_in_topic("b")] == ["P1"]
        assert [p.paper_id for p in store.papers_in_year(2005)] == ["P1"]

    def test_save_and_load_round_trip(self, tmp_path):
        papers = [_paper("P1", cites=("P2",)), _paper("P2")]
        survey = Survey(paper_id="P1", title="s", year=2019, key_phrases=("x",),
                        reference_occurrences={"P2": 2})
        store = CorpusStore(papers)
        store.add_survey(survey)
        store.save(tmp_path / "corpus")
        restored = CorpusStore.load(tmp_path / "corpus")
        assert restored.paper_ids == store.paper_ids
        assert restored.get_survey("P1").reference_occurrences == {"P2": 2}

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(CorpusError):
            CorpusStore.load(tmp_path / "missing")


class TestS2orcRecords:
    def test_round_trip_through_s2orc_format(self):
        papers = [_paper("P1", topic="widgets", cites=("P2",)), _paper("P2", topic="gadgets")]
        records = papers_to_s2orc(papers)
        restored = s2orc_to_papers(records)
        assert [p.paper_id for p in restored] == ["P1", "P2"]
        assert restored[0].topic == "widgets"
        assert restored[0].outbound_citations == ("P2",)

    def test_jsonl_round_trip(self, tmp_path):
        records = papers_to_s2orc([_paper("P1"), _paper("P2")])
        path = tmp_path / "shard.jsonl"
        assert write_s2orc_jsonl(records, path) == 2
        loaded = list(read_s2orc_jsonl(path))
        assert [r.paper_id for r in loaded] == ["P1", "P2"]

    def test_read_missing_shard_raises(self, tmp_path):
        with pytest.raises(CorpusError):
            list(read_s2orc_jsonl(tmp_path / "nope.jsonl"))

    def test_is_computer_science_flag(self):
        record = S2orcRecord(paper_id="P1", title="t", mag_field_of_study=("Biology",))
        assert not record.is_computer_science()
        record_cs = S2orcRecord(paper_id="P2", title="t")
        assert record_cs.is_computer_science()

    def test_from_dict_keeps_unknown_fields(self):
        record = S2orcRecord.from_dict(
            {"paper_id": "P1", "title": "t", "custom": 42, "year": None, "venue": None}
        )
        assert record.extra["custom"] == 42
        assert record.year == 0
