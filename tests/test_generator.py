"""Unit tests for the synthetic corpus generator.

These tests assert the structural properties that the reproduction relies on:
determinism, time-respecting citations, prerequisite citations, survey
reference composition and heavy-tailed citation counts.
"""

from __future__ import annotations

import pytest

from repro.config import CorpusConfig
from repro.corpus.generator import CorpusGenerator
from repro.corpus.vocabulary import build_default_taxonomy


class TestGeneratorDeterminism:
    def test_same_seed_same_corpus(self):
        config = CorpusConfig(papers_per_topic=12, surveys_per_topic=1)
        first = CorpusGenerator(config).generate()
        second = CorpusGenerator(config).generate()
        assert first.store.paper_ids == second.store.paper_ids
        assert [p.title for p in first.store] == [p.title for p in second.store]
        assert [s.reference_occurrences for s in first.store.surveys] == [
            s.reference_occurrences for s in second.store.surveys
        ]

    def test_different_seed_differs(self):
        base = CorpusConfig(papers_per_topic=12, surveys_per_topic=1, seed=1)
        other = CorpusConfig(papers_per_topic=12, surveys_per_topic=1, seed=2)
        first = CorpusGenerator(base).generate()
        second = CorpusGenerator(other).generate()
        assert [p.title for p in first.store] != [p.title for p in second.store]


class TestCorpusStructure:
    def test_expected_paper_counts(self, corpus, taxonomy):
        expected_regular = len(taxonomy) * corpus.config.papers_per_topic
        assert corpus.num_papers >= expected_regular
        assert corpus.num_surveys > 0

    def test_citations_respect_time(self, store):
        for paper in store:
            if paper.is_survey:
                continue
            for cited_id in paper.outbound_citations:
                cited = store.get_paper(cited_id)
                assert cited.year <= paper.year

    def test_surveys_cite_only_earlier_papers(self, store):
        for survey in store.surveys:
            for cited_id in survey.reference_occurrences:
                assert store.get_paper(cited_id).year < survey.year

    def test_papers_cite_prerequisite_topics(self, store, taxonomy):
        """Some citations must cross into prerequisite topics (Understanding II)."""
        crossing = 0
        total = 0
        for paper in store:
            if paper.is_survey or not paper.outbound_citations:
                continue
            prerequisites = taxonomy.transitive_prerequisites(paper.topic)
            for cited_id in paper.outbound_citations:
                total += 1
                if store.get_paper(cited_id).topic in prerequisites:
                    crossing += 1
        assert total > 0
        assert crossing / total > 0.10

    def test_survey_references_include_other_topics(self, store):
        """Surveys must reference papers outside their own topic (Observation I)."""
        fractions = []
        for survey in store.surveys:
            survey_topic = store.get_paper(survey.paper_id).topic
            refs = list(survey.reference_occurrences)
            outside = sum(
                1 for ref in refs if store.get_paper(ref).topic != survey_topic
            )
            fractions.append(outside / len(refs))
        average = sum(fractions) / len(fractions)
        assert average > 0.3

    def test_occurrence_counts_are_positive(self, store):
        for survey in store.surveys:
            assert all(count >= 1 for count in survey.reference_occurrences.values())

    def test_occurrence_levels_are_non_trivial(self, store):
        """L2 and L3 must be proper, non-empty subsets for most surveys."""
        non_trivial = 0
        for survey in store.surveys:
            l1, l2 = survey.label(1), survey.label(2)
            if l2 and len(l2) < len(l1):
                non_trivial += 1
        assert non_trivial / len(store.surveys) > 0.8

    def test_citation_counts_are_heavy_tailed(self, store):
        counts = sorted((p.citation_count for p in store if not p.is_survey), reverse=True)
        top_decile = counts[: max(1, len(counts) // 10)]
        assert sum(top_decile) > 0.3 * sum(counts)

    def test_citation_count_matches_in_degree_for_regular_papers(self, store):
        in_degree = store.citation_counts()
        for paper in store:
            if not paper.is_survey:
                assert paper.citation_count == in_degree[paper.paper_id]

    def test_survey_titles_look_like_surveys(self, store):
        for survey in store.surveys:
            assert any(word in survey.title.lower() for word in ("survey", "review"))

    def test_key_phrases_contain_topic_name(self, store, taxonomy):
        for survey in store.surveys:
            topic = taxonomy.get(store.get_paper(survey.paper_id).topic)
            assert topic.name in survey.key_phrases


class TestGeneratorEdgeCases:
    def test_small_corpus_still_produces_surveys(self):
        config = CorpusConfig(papers_per_topic=8, surveys_per_topic=1,
                              citations_per_paper=4.0, survey_reference_count=15.0)
        corpus = CorpusGenerator(config).generate()
        assert corpus.num_surveys > 0

    def test_custom_taxonomy_subset(self):
        taxonomy = build_default_taxonomy()
        config = CorpusConfig(papers_per_topic=10, surveys_per_topic=1)
        corpus = CorpusGenerator(config, taxonomy=taxonomy).generate()
        topics_present = {p.topic for p in corpus.store}
        assert topics_present <= set(taxonomy.topic_ids)
