"""Per-tenant admission quotas: fairness under a flooding tenant.

The multi-tenant stress scenario of the ROADMAP: two tenants behind one
8-worker executor, one of them flooding the queue.  With a
:class:`~repro.config.TenantQuota` on the flooder, the quiet tenant's
latency and success rate must be unaffected, the flooder must receive
*deterministic* 429s carrying the ``tenant_quota_exceeded`` taxonomy and a
``Retry-After`` hint, and the quota counters exposed on ``/v1/metrics`` must
reconcile exactly with the observed outcomes.

The tenants here are stub services with controllable latency (an event gate),
so admission arithmetic — not pipeline timing — decides every outcome and the
assertions are exact.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import pytest

from repro.config import ServingConfig, TenantOverrides, TenantQuota
from repro.errors import (
    ConfigurationError,
    QueryTimeoutError,
    TenantQuotaExceededError,
    error_payload,
)
from repro.repager.app import RePaGerApp
from repro.serving import BatchExecutor, MetricsRegistry, QueryRequest, parse_metrics_text

FLOOD_CAPACITY = 3  # max_in_flight=2 + max_queued=1
FLOOD_REQUESTS = 20
QUIET_REQUESTS = 25


class StubService:
    """Minimal service contract: instant (or gated) canned answers.

    Implements exactly what :meth:`RePaGerApp.handle_request` touches, so the
    tests exercise the real executor, registry and metrics plumbing while the
    "pipeline" completes in microseconds (or blocks on ``gate``).
    """

    def __init__(self, gate: threading.Event | None = None) -> None:
        self.gate = gate
        self.metrics = None  # assigned by attach_service
        self.cache = None
        self.cache_namespace = ""
        self.cache_ttl_seconds = None
        self.pipeline = SimpleNamespace(config_fingerprint="stub-fingerprint")

    def query_with_meta(self, text, year_cutoff=None, exclude_ids=(), use_cache=True):
        if self.gate is not None:
            assert self.gate.wait(timeout=30.0), "test gate never opened"
        return {"query": text}, False


@pytest.fixture()
def app():
    app = RePaGerApp(
        config=ServingConfig(
            port=0, max_workers=8, queue_depth=32, query_timeout_seconds=60.0
        )
    )
    yield app
    app.close(wait=False)


@pytest.fixture()
def gate():
    return threading.Event()


@pytest.fixture()
def flooded_app(app, gate):
    """``flood`` (gated, quota-capped) and ``quiet`` (instant, unlimited)."""
    app.attach_service(
        "flood",
        StubService(gate=gate),
        default=True,
        overrides=TenantOverrides(quota=TenantQuota(max_in_flight=2, max_queued=1)),
    )
    app.attach_service("quiet", StubService())
    return app


def _flood(app, results, done):
    def worker(index: int) -> None:
        try:
            app.query(f"flood query {index}", corpus="flood")
            outcome = "ok"
        except TenantQuotaExceededError as exc:
            assert exc.retry_after_seconds > 0
            assert error_payload(exc)["code"] == "tenant_quota_exceeded"
            assert error_payload(exc)["http_status"] == 429
            outcome = "rejected"
        with results["lock"]:
            results[outcome] += 1
            if results["ok"] + results["rejected"] == FLOOD_REQUESTS:
                done.set()

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(FLOOD_REQUESTS)
    ]
    for thread in threads:
        thread.start()
    return threads


def _wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestFloodingTenant:
    def test_quiet_tenant_unaffected_and_flooder_429s_deterministically(
        self, flooded_app, gate
    ):
        app = flooded_app
        results = {"ok": 0, "rejected": 0, "lock": threading.Lock()}
        done = threading.Event()
        threads = _flood(app, results, done)
        try:
            # Exactly FLOOD_CAPACITY requests are admitted (and now block on
            # the gate); every other submission is rejected synchronously.
            assert _wait_until(
                lambda: results["rejected"] == FLOOD_REQUESTS - FLOOD_CAPACITY
            ), results
            usage = app.executor.tenant_usage("flood")
            assert usage["admitted"] == FLOOD_CAPACITY
            assert usage["rejected_total"] == FLOOD_REQUESTS - FLOOD_CAPACITY

            # The quiet tenant, queried *while* the flood is parked in the
            # pool, never fails admission and stays fast: the flooder holds
            # at most its quota's worth of the 8 workers.
            latencies = []
            for index in range(QUIET_REQUESTS):
                started = time.perf_counter()
                response = app.query(f"quiet query {index}", corpus="quiet")
                latencies.append(time.perf_counter() - started)
                assert response.corpus == "quiet"
            latencies.sort()
            p95 = latencies[int(0.95 * (len(latencies) - 1))]
            assert p95 < 1.0, f"quiet tenant p95 degraded to {p95:.3f}s"
            assert app.executor.tenant_usage("quiet")["rejected_total"] == 0
        finally:
            gate.set()
            for thread in threads:
                thread.join(timeout=30)
        # The admitted flood requests complete once released: quota
        # rejections hit only the overflow, never the admitted work.
        assert results["ok"] == FLOOD_CAPACITY
        assert results["rejected"] == FLOOD_REQUESTS - FLOOD_CAPACITY
        assert app.executor.tenant_usage("flood")["admitted"] == 0

    def test_metrics_reconcile_with_observed_outcomes(self, flooded_app, gate):
        """The ``/v1/metrics`` exposition (rendered by ``metrics_text``) must
        agree exactly with what the clients saw."""
        app = flooded_app
        results = {"ok": 0, "rejected": 0, "lock": threading.Lock()}
        done = threading.Event()
        threads = _flood(app, results, done)
        assert _wait_until(
            lambda: results["rejected"] == FLOOD_REQUESTS - FLOOD_CAPACITY
        ), results
        for index in range(5):
            app.query(f"quiet {index}", corpus="quiet")
        gate.set()
        assert done.wait(timeout=30)
        for thread in threads:
            thread.join(timeout=30)

        series = parse_metrics_text(app.metrics_text())
        flood = (("corpus", "flood"),)
        quiet = (("corpus", "quiet"),)
        assert series["repager_quota_admitted_total"][flood] == results["ok"]
        assert series["repager_quota_rejected_total"][flood] == results["rejected"]
        assert series["repager_quota_admitted_total"][quiet] == 5
        assert quiet not in series.get("repager_quota_rejected_total", {})
        # The executor's aggregate counter matches the per-tenant sum.
        assert series["repager_executor_quota_rejected_total"][()] == results["rejected"]
        # Everything admitted has drained: no in-flight gauge residue.
        assert series["repager_in_flight"][flood] == 0
        assert series["repager_in_flight"][quiet] == 0


class TestQuotaMechanics:
    def test_token_bucket_is_deterministic_under_injected_clock(self):
        clock = SimpleNamespace(now=100.0)
        registry = MetricsRegistry()
        executor = BatchExecutor(
            lambda request: "ok", max_workers=2, clock=lambda: clock.now
        )
        try:
            executor.configure_tenant(
                "t",
                quota=TenantQuota(rate_per_second=2.0, burst=2),
                metrics=registry,
            )
            request = QueryRequest(text="q", corpus="t")
            assert executor.run_one(request) == "ok"
            assert executor.run_one(request) == "ok"
            with pytest.raises(TenantQuotaExceededError) as excinfo:
                executor.run_one(request)
            # Bucket empty: the next token arrives in exactly 1/rate seconds.
            assert excinfo.value.retry_after_seconds == pytest.approx(0.5)
            clock.now += 0.5
            assert executor.run_one(request) == "ok"
            assert registry.counter("quota_admitted_total") == 3
            assert registry.counter("quota_rejected_total") == 1
        finally:
            executor.shutdown(wait=True)

    def test_run_batch_reports_quota_rejections_as_outcomes(self):
        gate = threading.Event()

        def handler(request):
            assert gate.wait(timeout=30)
            return request.text

        executor = BatchExecutor(handler, max_workers=4)
        try:
            executor.configure_tenant(
                "capped", quota=TenantQuota(max_in_flight=1, max_queued=0)
            )
            requests = [QueryRequest(text=f"q{i}", corpus="capped") for i in range(3)]
            requests.append(QueryRequest(text="free", corpus="open"))
            # The gate stays closed through admission (so the capped tenant's
            # first request still holds its slot when the next two arrive)
            # and opens before the batch starts waiting on results.
            threading.Timer(0.25, gate.set).start()
            outcomes = executor.run_batch(requests)
            assert [outcome.ok for outcome in outcomes] == [True, False, False, True]
            for outcome in outcomes[1:3]:
                assert outcome.error_code == "tenant_quota_exceeded"
                assert outcome.error_status == 429
        finally:
            executor.shutdown(wait=True)

    def test_per_tenant_timeout_override(self):
        def handler(request):
            if request.corpus == "slow":
                time.sleep(0.5)
            return "ok"

        executor = BatchExecutor(handler, max_workers=2, timeout_seconds=30.0)
        try:
            executor.configure_tenant("slow", timeout_seconds=0.05)
            started = time.perf_counter()
            with pytest.raises(QueryTimeoutError):
                executor.run_one(QueryRequest(text="q", corpus="slow"))
            assert time.perf_counter() - started < 5.0
            assert executor.run_one(QueryRequest(text="q", corpus="fast")) == "ok"
        finally:
            executor.shutdown(wait=True)

    def test_global_overload_releases_the_tenant_charge(self):
        gate = threading.Event()

        def handler(request):
            assert gate.wait(timeout=30)
            return "ok"

        executor = BatchExecutor(handler, max_workers=1, queue_depth=0)
        try:
            executor.configure_tenant("t", quota=TenantQuota(max_in_flight=8))
            future = executor.submit(QueryRequest(text="q1", corpus="t"))
            from repro.errors import ExecutorOverloadedError

            with pytest.raises(ExecutorOverloadedError):
                executor.submit(QueryRequest(text="q2", corpus="t"))
            # The global rejection must refund the tenant's admission charge.
            assert executor.tenant_usage("t")["admitted"] == 1
            gate.set()
            assert future.result(timeout=30) == "ok"
        finally:
            executor.shutdown(wait=True)

    def test_global_overload_refunds_the_rate_token(self):
        """A globally rejected request never ran: its rate-limit token must
        come back, or a compliant retry gets a bogus tenant 429."""
        clock = SimpleNamespace(now=0.0)
        gate = threading.Event()

        def handler(request):
            assert gate.wait(timeout=30)
            return "ok"

        executor = BatchExecutor(
            handler, max_workers=1, queue_depth=0, clock=lambda: clock.now
        )
        try:
            executor.configure_tenant(
                "t", quota=TenantQuota(rate_per_second=1.0, burst=2)
            )
            from repro.errors import ExecutorOverloadedError

            future = executor.submit(QueryRequest(text="q1", corpus="t"))
            # q2 passes the tenant check (one token left, now consumed) and
            # only then hits the full global queue.
            with pytest.raises(ExecutorOverloadedError):
                executor.submit(QueryRequest(text="q2", corpus="t"))
            gate.set()
            assert future.result(timeout=30) == "ok"
            # Same clock instant: only the refunded token can admit this.
            assert executor.run_one(QueryRequest(text="q3", corpus="t")) == "ok"
        finally:
            executor.shutdown(wait=True)

    def test_global_queue_parking_is_not_tenant_queued(self):
        """Regression: a ``run_batch`` request parked on the *global*
        semaphore holds only its tenant admission charge — it must not be
        reported by ``tenant_usage()`` as holding a tenant ``queued`` slot."""
        gate = threading.Event()

        def handler(request):
            assert gate.wait(timeout=30)
            return request.text

        executor = BatchExecutor(handler, max_workers=1, queue_depth=0)
        try:
            executor.configure_tenant("t", quota=TenantQuota(max_in_flight=8))
            requests = [QueryRequest(text=f"q{i}", corpus="t") for i in range(3)]
            batch: dict = {}

            def run():
                batch["outcomes"] = executor.run_batch(requests)

            thread = threading.Thread(target=run)
            thread.start()
            # q0 executes (blocked on the gate); q1 is parked on the global
            # semaphore: admitted (it holds its tenant charge) but not queued.
            assert _wait_until(
                lambda: executor.tenant_usage("t")["executing"] == 1
            )
            assert _wait_until(
                lambda: executor.tenant_usage("t")["admitted"] >= 2
            )
            usage = executor.tenant_usage("t")
            assert usage["queued"] == 0, usage
            gate.set()
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert [outcome.ok for outcome in batch["outcomes"]] == [True] * 3
            assert executor.tenant_usage("t")["admitted"] == 0
            assert executor.tenant_usage("t")["queued"] == 0
        finally:
            gate.set()
            executor.shutdown(wait=True)

    def test_quota_validation(self):
        with pytest.raises(ConfigurationError):
            TenantQuota(max_in_flight=0)
        with pytest.raises(ConfigurationError):
            TenantQuota(max_queued=1)  # requires max_in_flight
        with pytest.raises(ConfigurationError):
            TenantQuota(rate_per_second=0.0)
        with pytest.raises(ConfigurationError):
            TenantQuota(max_in_flight=1, burst=0)
        assert TenantQuota(max_in_flight=2, max_queued=3).capacity() == 5
        assert TenantQuota(rate_per_second=1.0).capacity() is None

    def test_quota_from_dict_rejects_malformed_bodies_as_client_errors(self):
        """Malformed quota JSON must map to the 400 taxonomy, never a 500."""
        from repro.errors import ReproError

        assert TenantQuota.from_dict({"burst": None}).burst == 1
        assert TenantQuota.from_dict({"max_in_flight": None}).max_in_flight is None
        for body in (
            {"rate_per_second": True},
            {"max_in_flight": "2"},
            {"max_in_flight": 2.5},
            {"burst": False},
            {"max_inflight": 2},
            {"max_in_flight": 0},
        ):
            with pytest.raises(ReproError) as excinfo:
                TenantQuota.from_dict(body)
            assert excinfo.value.http_status == 400, body
