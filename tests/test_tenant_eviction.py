"""Tenant eviction lifecycle: snapshot round trips preserve the golden contract.

A property-style walk drives random attach/query/idle/evict/re-attach
sequences against an app whose resident limit (2) is smaller than its corpus
count (3), so tenants are continuously evicted to disk snapshots and
transparently re-attached on their next request.  After every step the walk
queries an arbitrary corpus and asserts the payload is **byte-identical** to
a never-evicted control service over the same corpus — eviction must be
invisible to clients, not merely "mostly equivalent".

The model registry (plain dicts in the test) independently tracks what should
be resident/evicted, and the registry's state is reconciled against it after
every step.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.config import CorpusConfig, PipelineConfig, ServingConfig
from repro.corpus.generator import CorpusGenerator
from repro.corpus.storage import CorpusStore
from repro.errors import ServingError
from repro.repager.app import RePaGerApp
from repro.repager.service import RePaGerService
from repro.serving import warm_up

PIPELINE = PipelineConfig(num_seeds=10)

#: Three deterministic corpora, distinct seeds so their reading paths differ.
CORPUS_CONFIGS = {
    "alpha": CorpusConfig(seed=7, papers_per_topic=18, surveys_per_topic=2,
                          citations_per_paper=10.0),
    "beta": CorpusConfig(seed=13, papers_per_topic=18, surveys_per_topic=2,
                         citations_per_paper=10.0),
    "gamma": CorpusConfig(seed=21, papers_per_topic=18, surveys_per_topic=2,
                          citations_per_paper=10.0),
}

QUERIES = ("machine learning", "information retrieval", "deep learning")


def canonical_bytes(payload) -> bytes:
    """The byte-level contract: canonical JSON minus wall-clock timing."""
    data = payload.to_dict()
    data["stats"] = {k: v for k, v in data["stats"].items() if k != "elapsed_seconds"}
    return json.dumps(data, sort_keys=True).encode("utf-8")


@pytest.fixture(scope="module")
def corpus_dirs(tmp_path_factory):
    root = tmp_path_factory.mktemp("eviction-corpora")
    dirs = {}
    for name, config in CORPUS_CONFIGS.items():
        path = root / name
        CorpusGenerator(config).generate().store.save(path)
        dirs[name] = str(path)
    return dirs


@pytest.fixture(scope="module")
def control(corpus_dirs):
    """Never-evicted ground truth, built from the same on-disk corpora."""
    services = {}
    for name, corpus_dir in corpus_dirs.items():
        service = RePaGerService(
            CorpusStore.load(corpus_dir), pipeline_config=PIPELINE
        )
        warm_up(service)
        services[name] = service
    return {
        name: {
            query: canonical_bytes(service.query(query, use_cache=False))
            for query in QUERIES
        }
        for name, service in services.items()
    }


@pytest.fixture()
def app(corpus_dirs):
    app = RePaGerApp(
        config=ServingConfig(
            port=0,
            max_workers=4,
            query_timeout_seconds=120.0,
            max_resident_corpora=2,
        ),
        pipeline_config=PIPELINE,
    )
    for name, corpus_dir in corpus_dirs.items():
        app.attach_directory(name, corpus_dir, default=name == "alpha")
    yield app
    app.close(wait=False)


def assert_registry_consistent(app, names):
    """Invariants that must hold after *every* lifecycle step."""
    resident = set(app.registry.names())
    evicted = set(app.registry.evicted_names())
    assert resident | evicted == set(names)
    assert not resident & evicted
    assert len(resident) <= app.config.max_resident_corpora
    # Evicted tenants must not squat on shared-cache capacity.
    cached_namespaces = {key[0] for key in app.cache._entries}
    assert not cached_namespaces & evicted
    # A warm tenant's eviction record points at a restorable snapshot on
    # disk; a cold one (never queried before eviction) records none and
    # recomputes its artifacts lazily on re-attach.
    for name in evicted:
        record = app.registry.evicted_record(name)
        if record.snapshot_path is not None:
            assert Path(record.snapshot_path).is_file()


def test_lifecycle_walk_is_byte_identical_to_control(app, control, corpus_dirs):
    """Random attach/query/idle/evict/re-attach walk vs the model registry."""
    rng = random.Random(0xE51C7)
    names = list(CORPUS_CONFIGS)
    evict_count = reattach_count = 0

    # Attaching three corpora with a 2-resident limit already evicted one.
    assert_registry_consistent(app, names)
    assert len(app.registry.evicted_names()) == 1

    for step in range(14):
        action = rng.choice(("query", "query", "query", "evict", "idle"))
        name = rng.choice(names)
        if action == "evict" and name in app.registry:
            app.evict(name)
            evict_count += 1
        elif action == "idle":
            # Touch every *other* resident tenant so `name` becomes the LRU
            # eviction candidate — exercises the idle-tracker ordering.
            for other in app.registry.names():
                if other != name:
                    app.registry.mark_used(other)
        else:
            was_evicted = name in app.registry.evicted_names()
            response = app.query(
                {"query": rng.choice(QUERIES), "use_cache": bool(rng.getrandbits(1))},
                corpus=name,
            )
            assert response.corpus == name
            reattach_count += was_evicted
            assert name in app.registry  # re-attached and resident

        # After every step: any corpus, queried through the app, answers
        # byte-identically to the never-evicted control.
        probe = rng.choice(names)
        query = rng.choice(QUERIES)
        response = app.query({"query": query, "use_cache": False}, corpus=probe)
        assert canonical_bytes(response.payload) == control[probe][query], (
            f"step {step}: corpus {probe!r} diverged from the control "
            f"after {evict_count} evictions / {reattach_count} re-attaches"
        )
        assert_registry_consistent(app, names)

    # The walk must actually have exercised the lifecycle, not idled through.
    assert evict_count + reattach_count > 0
    assert len(app.registry.evicted_names()) >= 1


def test_explicit_evict_round_trip_preserves_payloads(app, control):
    before = app.query({"query": "machine learning", "use_cache": False}, corpus="beta")
    record = app.evict("beta")
    assert record.snapshot_path is not None
    assert Path(record.snapshot_path).is_file()
    assert "beta" not in app.registry
    assert "beta" in app.registry.evicted_names()

    # The next request transparently re-attaches from the snapshot.
    after = app.query({"query": "machine learning", "use_cache": False}, corpus="beta")
    assert canonical_bytes(before.payload) == canonical_bytes(after.payload)
    assert canonical_bytes(after.payload) == control["beta"]["machine learning"]
    assert "beta" in app.registry
    # Re-attaching pushed residents past the limit again: someone else left.
    assert len(app.registry.names()) <= 2


def test_evicting_the_default_keeps_legacy_routing(app, control):
    """The default *name* survives eviction: default-tenant (legacy) queries
    re-attach it instead of 404ing or silently switching corpus."""
    assert app.registry.default_name == "alpha"
    if "alpha" not in app.registry:  # startup eviction may have taken it
        app.query("machine learning", corpus="alpha")
    app.evict("alpha")
    assert app.registry.default_name == "alpha"
    response = app.query({"query": "deep learning", "use_cache": False})  # default route
    assert response.corpus == "alpha"
    assert canonical_bytes(response.payload) == control["alpha"]["deep learning"]


def test_in_memory_tenants_are_not_evictable(app, store):
    app.attach_store("inmem", store, PIPELINE)
    try:
        with pytest.raises(ServingError):
            app.evict("inmem")
        # Nor may the resident-limit sweep pick them: only directory-backed
        # tenants are candidates, so "inmem" stays resident.
        app.enforce_resident_limit()
        assert "inmem" in app.registry
    finally:
        app.detach("inmem")


def test_cold_evict_skips_snapshot_capture(app, control):
    """Evicting a never-queried tenant must not force a full warm-up just to
    snapshot artifacts that were never built; re-attach recomputes lazily."""
    startup_evicted = app.registry.evicted_names()[0]
    record = app.registry.evicted_record(startup_evicted)
    assert record.snapshot_path is None  # nothing was built, nothing captured
    response = app.query(
        {"query": "machine learning", "use_cache": False}, corpus=startup_evicted
    )
    assert canonical_bytes(response.payload) == control[startup_evicted]["machine learning"]


def test_broken_snapshot_falls_back_to_cold_reattach(app, control):
    """A vanished snapshot file (tmp cleaner) degrades to recomputation —
    byte-identical output, never a bricked tenant."""
    if "beta" not in app.registry:
        app.query("machine learning", corpus="beta")
    app.query("machine learning", corpus="beta")  # warm it so evict snapshots
    record = app.evict("beta")
    assert record.snapshot_path is not None
    Path(record.snapshot_path).unlink()
    response = app.query(
        {"query": "deep learning", "use_cache": False}, corpus="beta"
    )
    assert canonical_bytes(response.payload) == control["beta"]["deep learning"]
    assert "beta" in app.registry


def test_variant_survives_eviction_round_trip_byte_identical(app, control):
    """Warm variants come back warm: eviction records the live variant labels
    and re-attach rebuilds them primed from the restored base artifacts."""
    if "beta" not in app.registry:
        app.query({"query": "machine learning", "use_cache": False}, corpus="beta")
    before = app.query(
        {"query": "machine learning", "use_cache": False, "variant": "NEWST-W"},
        corpus="beta",
    )
    assert app.registry.get("beta").variants_loaded() == ("NEWST-W",)

    record = app.evict("beta")
    assert record.variants == ("NEWST-W",)
    assert record.snapshot_path is not None

    # Re-attach through a *base* query — the variant must not need its own
    # traffic to come back primed.
    app.query({"query": "machine learning", "use_cache": False}, corpus="beta")
    tenant = app.registry.get("beta")
    assert tenant.variants_loaded() == ("NEWST-W",)
    variant_service = tenant.service_for("NEWST-W")
    assert variant_service.pipeline.primed_node_weights is not None

    after = app.query(
        {"query": "machine learning", "use_cache": False, "variant": "NEWST-W"},
        corpus="beta",
    )
    assert canonical_bytes(before.payload) == canonical_bytes(after.payload)
    # The base pipeline still matches the never-evicted control.
    base = app.query(
        {"query": "machine learning", "use_cache": False}, corpus="beta"
    )
    assert canonical_bytes(base.payload) == control["beta"]["machine learning"]


def test_variant_only_traffic_still_captures_eviction_snapshot(app, control):
    """A tenant whose only traffic targeted a variant has warm artifacts on
    the variant pipeline; eviction must pull them back to the base and
    snapshot them instead of evicting 'cold' and recomputing on re-attach."""
    name = app.registry.names()[0]
    tenant = app.registry.get(name)
    assert tenant.service.pipeline.primed_node_weights is None  # base is cold
    before = app.query(
        {"query": "deep learning", "use_cache": False, "variant": "NEWST-W"},
        corpus=name,
    )
    assert tenant.service.pipeline.primed_node_weights is None  # still cold

    record = app.evict(name)
    assert record.snapshot_path is not None, (
        "variant-warmed artifacts were not captured by the eviction snapshot"
    )
    assert Path(record.snapshot_path).is_file()

    after = app.query(
        {"query": "deep learning", "use_cache": False, "variant": "NEWST-W"},
        corpus=name,
    )
    assert canonical_bytes(before.payload) == canonical_bytes(after.payload)
    base = app.query({"query": "deep learning", "use_cache": False}, corpus=name)
    assert canonical_bytes(base.payload) == control[name]["deep learning"]


def test_detaching_an_evicted_tenant_removes_it_for_good(app):
    if "gamma" not in app.registry.evicted_names():
        if "gamma" not in app.registry:
            app.query("machine learning", corpus="gamma")
        app.evict("gamma")
    assert app.detach("gamma") is None
    assert "gamma" not in app.registry.evicted_names()
    assert "gamma" not in app.registry.known_names()
    from repro.errors import CorpusNotFoundError

    with pytest.raises(CorpusNotFoundError):
        app.query("machine learning", corpus="gamma")
