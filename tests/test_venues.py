"""Unit tests for the venue-ranking substrate."""

from __future__ import annotations

import pytest

from repro.corpus.vocabulary import DOMAINS
from repro.errors import ConfigurationError
from repro.venues.rankings import (
    CCF_TIER_SCORES,
    UNRANKED_VENUE_SCORE,
    Venue,
    VenueCatalog,
    build_default_catalog,
)


class TestVenue:
    def test_score_is_mean_of_tier_and_influence(self):
        venue = Venue(name="X", domain=DOMAINS[0], ccf_tier="A", aminer_influence=0.8)
        assert venue.score == pytest.approx((1.0 + 0.8) / 2)

    def test_invalid_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            Venue(name="X", domain=DOMAINS[0], ccf_tier="D", aminer_influence=0.5)

    def test_invalid_influence_rejected(self):
        with pytest.raises(ConfigurationError):
            Venue(name="X", domain=DOMAINS[0], ccf_tier="A", aminer_influence=1.5)

    def test_unknown_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            Venue(name="X", domain="Astrology", ccf_tier="A", aminer_influence=0.5)


class TestCatalog:
    def test_default_catalog_covers_all_domains(self, venues):
        assert len(venues) > 60
        for domain in DOMAINS:
            assert venues.venues_in_domain(domain), domain

    def test_duplicate_names_rejected(self):
        venue = Venue(name="X", domain=DOMAINS[0], ccf_tier="A", aminer_influence=0.5)
        with pytest.raises(ConfigurationError):
            VenueCatalog([venue, venue])

    def test_known_venue_lookup(self, venues):
        assert venues.get("ICDE") is not None
        assert venues.domain_of("ICDE") == DOMAINS[1]
        assert "ICDE" in venues

    def test_unknown_venue_gets_floor_score(self, venues):
        assert venues.get("arXiv preprint") is None
        assert venues.score("arXiv preprint") == UNRANKED_VENUE_SCORE
        assert venues.domain_of("arXiv preprint") is None

    def test_tier_a_scores_above_tier_c_on_average(self, venues):
        tier_a = [v.score for v in venues if v.ccf_tier == "A"]
        tier_c = [v.score for v in venues if v.ccf_tier == "C"]
        assert sum(tier_a) / len(tier_a) > sum(tier_c) / len(tier_c)

    def test_scores_in_unit_interval(self, venues):
        for venue in venues:
            assert 0.0 <= venue.score <= 1.0

    def test_tier_scores_ordering(self):
        assert CCF_TIER_SCORES["A"] > CCF_TIER_SCORES["B"] > CCF_TIER_SCORES["C"]

    def test_catalog_is_deterministic(self):
        first = {v.name: v.score for v in build_default_catalog()}
        second = {v.name: v.score for v in build_default_catalog()}
        assert first == second
