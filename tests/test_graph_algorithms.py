"""Unit tests for PageRank, shortest paths, MST, traversal and graph statistics.

Where practical, results are cross-checked against networkx on the same graph.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import GraphError, NodeNotFoundError
from repro.graph.citation_graph import CitationGraph
from repro.graph.metrics import degree_histogram, graph_statistics
from repro.graph.mst import UnionFind, minimum_spanning_tree
from repro.graph.pagerank import pagerank
from repro.graph.shortest_paths import dijkstra, shortest_path
from repro.graph.traversal import connected_component, connected_components, k_hop_neighborhood


def _chain_graph() -> CitationGraph:
    graph = CitationGraph()
    for source, target in [("A", "B"), ("B", "C"), ("C", "D"), ("A", "E")]:
        graph.add_edge(source, target)
    return graph


class TestPageRank:
    def test_scores_sum_to_one(self, citation_graph):
        scores = pagerank(citation_graph, max_iterations=30)
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)
        assert all(score > 0 for score in scores.values())

    def test_matches_networkx_on_small_graph(self):
        graph = _chain_graph()
        ours = pagerank(graph, damping=0.85, max_iterations=200, tolerance=1e-12)
        nx_graph = nx.DiGraph(list(graph.edges()))
        theirs = nx.pagerank(nx_graph, alpha=0.85, max_iter=200, tol=1e-12)
        for node in graph.nodes:
            assert ours[node] == pytest.approx(theirs[node], abs=1e-4)

    def test_highly_cited_node_scores_higher(self):
        graph = CitationGraph()
        for source in ("A", "B", "C", "D"):
            graph.add_edge(source, "HUB")
        graph.add_edge("A", "B")
        scores = pagerank(graph)
        assert scores["HUB"] == max(scores.values())

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            pagerank(CitationGraph())

    def test_invalid_damping_rejected(self):
        with pytest.raises(GraphError):
            pagerank(_chain_graph(), damping=1.5)

    def test_personalization_shifts_mass(self):
        graph = _chain_graph()
        scores = pagerank(graph, personalization={"E": 1.0})
        uniform = pagerank(graph)
        assert scores["E"] > uniform["E"]

    def test_personalization_without_mass_rejected(self):
        with pytest.raises(GraphError):
            pagerank(_chain_graph(), personalization={"Z": 1.0})


class TestDijkstra:
    def test_unit_costs_count_hops(self):
        graph = _chain_graph()
        result = dijkstra(graph, "A")
        assert result.distance_to("D") == 3
        assert result.path_to("D") == ["A", "B", "C", "D"]

    def test_unreachable_returns_infinity(self):
        graph = _chain_graph()
        graph.add_node("LONELY")
        result = dijkstra(graph, "A")
        assert result.distance_to("LONELY") == float("inf")
        assert result.path_to("LONELY") == []

    def test_node_costs_are_added_for_intermediates(self):
        graph = _chain_graph()
        result = dijkstra(graph, "A", node_cost=lambda n: 10.0)
        # A -> B -> C: one intermediate node (B) plus two unit edges.
        assert result.distance_to("C") == pytest.approx(12.0)
        # Endpoints are excluded from the node-cost sum.
        assert result.distance_to("B") == pytest.approx(1.0)

    def test_edge_costs_respected(self):
        graph = CitationGraph()
        graph.add_edge("A", "B")
        graph.add_edge("B", "C")
        graph.add_edge("A", "C")
        costs = {("A", "B"): 1.0, ("B", "C"): 1.0, ("A", "C"): 5.0}
        path, cost = shortest_path(graph, "A", "C", edge_cost=lambda u, v: costs[(u, v)])
        assert path == ["A", "B", "C"]
        assert cost == pytest.approx(2.0)

    def test_directed_search_cannot_go_backwards(self):
        graph = _chain_graph()
        result = dijkstra(graph, "D", undirected=False)
        assert result.distance_to("A") == float("inf")

    def test_undirected_search_traverses_reversed_edges(self):
        graph = _chain_graph()
        result = dijkstra(graph, "D", undirected=True)
        assert result.distance_to("A") == 3

    def test_negative_cost_rejected(self):
        graph = _chain_graph()
        with pytest.raises(GraphError):
            dijkstra(graph, "A", edge_cost=lambda u, v: -1.0)

    def test_missing_source_raises(self):
        with pytest.raises(NodeNotFoundError):
            dijkstra(_chain_graph(), "Z")

    def test_matches_networkx_shortest_paths(self, citation_graph):
        some_node = citation_graph.nodes[0]
        ours = dijkstra(citation_graph, some_node)
        nx_graph = nx.Graph(list(citation_graph.edges()))
        theirs = nx.single_source_shortest_path_length(nx_graph, some_node)
        for node, distance in list(theirs.items())[:200]:
            assert ours.distance_to(node) == pytest.approx(float(distance))


class TestUnionFindAndMst:
    def test_union_find_merges_and_finds(self):
        forest = UnionFind(["a", "b", "c"])
        assert forest.union("a", "b")
        assert not forest.union("a", "b")
        assert forest.connected("a", "b")
        assert not forest.connected("a", "c")
        assert len(forest.components()) == 2

    def test_union_find_unknown_element_raises(self):
        with pytest.raises(GraphError):
            UnionFind(["a"]).find("z")

    def test_mst_matches_networkx(self):
        edges = [
            ("a", "b", 1.0), ("b", "c", 2.0), ("a", "c", 2.5),
            ("c", "d", 1.0), ("b", "d", 4.0), ("d", "e", 0.5),
        ]
        ours = minimum_spanning_tree(["a", "b", "c", "d", "e"], edges)
        total = sum(weight for _, _, weight in ours)
        nx_graph = nx.Graph()
        nx_graph.add_weighted_edges_from(edges)
        theirs = nx.minimum_spanning_tree(nx_graph)
        assert total == pytest.approx(theirs.size(weight="weight"))
        assert len(ours) == 4

    def test_mst_on_disconnected_graph_returns_forest(self):
        edges = [("a", "b", 1.0), ("c", "d", 1.0)]
        forest = minimum_spanning_tree(["a", "b", "c", "d"], edges)
        assert len(forest) == 2

    def test_mst_rejects_negative_weights(self):
        with pytest.raises(GraphError):
            minimum_spanning_tree(["a", "b"], [("a", "b", -1.0)])

    def test_mst_rejects_unknown_nodes(self):
        with pytest.raises(GraphError):
            minimum_spanning_tree(["a"], [("a", "z", 1.0)])


class TestTraversal:
    def test_zero_order_returns_seeds_only(self):
        graph = _chain_graph()
        assert k_hop_neighborhood(graph, ["A"], 0) == {"A": 0}

    def test_orders_expand_monotonically(self):
        graph = _chain_graph()
        first = set(k_hop_neighborhood(graph, ["A"], 1))
        second = set(k_hop_neighborhood(graph, ["A"], 2))
        assert first <= second
        assert "C" not in first
        assert "C" in second

    def test_direction_out_follows_citations_only(self):
        graph = _chain_graph()
        hood = k_hop_neighborhood(graph, ["B"], 1, direction="out")
        assert set(hood) == {"B", "C"}
        hood_in = k_hop_neighborhood(graph, ["B"], 1, direction="in")
        assert set(hood_in) == {"B", "A"}

    def test_missing_seeds_are_skipped(self):
        graph = _chain_graph()
        hood = k_hop_neighborhood(graph, ["A", "MISSING"], 1)
        assert "MISSING" not in hood

    def test_max_nodes_cap(self):
        graph = _chain_graph()
        hood = k_hop_neighborhood(graph, ["A"], 3, max_nodes=2)
        assert len(hood) == 2

    def test_invalid_arguments_rejected(self):
        graph = _chain_graph()
        with pytest.raises(GraphError):
            k_hop_neighborhood(graph, ["A"], -1)
        with pytest.raises(GraphError):
            k_hop_neighborhood(graph, ["A"], 1, direction="sideways")

    def test_connected_components(self):
        graph = _chain_graph()
        graph.add_edge("X", "Y")
        components = connected_components(graph)
        assert len(components) == 2
        assert len(components[0]) >= len(components[1])  # sorted by size
        assert connected_component(graph, "X") == {"X", "Y"}


class TestGraphStatistics:
    def test_statistics_on_shared_graph(self, citation_graph):
        stats = graph_statistics(citation_graph)
        assert stats.num_nodes == citation_graph.num_nodes
        assert stats.num_edges == citation_graph.num_edges
        assert stats.largest_component_size <= stats.num_nodes
        assert stats.mean_in_degree == pytest.approx(stats.mean_out_degree)

    def test_statistics_on_empty_graph(self):
        stats = graph_statistics(CitationGraph())
        assert stats.num_nodes == 0
        assert stats.num_components == 0

    def test_degree_histogram_bins(self):
        graph = _chain_graph()
        histogram = degree_histogram(graph, bins=[(0, 0), (1, 2)], kind="in")
        assert histogram["0-0"] == 1  # A has no incoming edge
        assert histogram["1-2"] == 4

    def test_degree_histogram_invalid_kind(self):
        with pytest.raises(ValueError):
            degree_histogram(_chain_graph(), bins=[(0, 1)], kind="bogus")
