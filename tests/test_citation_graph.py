"""Unit tests for the CitationGraph data structure."""

from __future__ import annotations

import pytest

from repro.errors import EdgeNotFoundError, NodeNotFoundError
from repro.graph.citation_graph import CitationGraph
from repro.types import Paper


def _triangle() -> CitationGraph:
    graph = CitationGraph()
    graph.add_edge("A", "B", kind="cites")
    graph.add_edge("B", "C")
    graph.add_edge("A", "C")
    return graph


class TestConstruction:
    def test_counts(self):
        graph = _triangle()
        assert graph.num_nodes == 3
        assert graph.num_edges == 3

    def test_from_papers_skips_dangling_by_default(self):
        papers = [
            Paper(paper_id="P1", title="a", outbound_citations=("P2", "MISSING")),
            Paper(paper_id="P2", title="b"),
        ]
        graph = CitationGraph.from_papers(papers)
        assert "MISSING" not in graph
        assert graph.num_edges == 1

    def test_from_papers_keeps_dangling_when_asked(self):
        papers = [Paper(paper_id="P1", title="a", outbound_citations=("MISSING",))]
        graph = CitationGraph.from_papers(papers, skip_dangling=False)
        assert "MISSING" in graph
        assert graph.has_edge("P1", "MISSING")

    def test_from_papers_records_attributes(self, store, citation_graph):
        some_paper = store.papers[0]
        assert citation_graph.get_node_attr(some_paper.paper_id, "year") == some_paper.year
        assert citation_graph.get_node_attr(some_paper.paper_id, "topic") == some_paper.topic

    def test_duplicate_edge_not_double_counted(self):
        graph = CitationGraph()
        graph.add_edge("A", "B")
        graph.add_edge("A", "B", weight=2)
        assert graph.num_edges == 1
        assert graph.get_edge_attr("A", "B", "weight") == 2


class TestQueries:
    def test_successors_and_predecessors(self):
        graph = _triangle()
        assert set(graph.successors("A")) == {"B", "C"}
        assert set(graph.predecessors("C")) == {"B", "A"}
        assert set(graph.neighbors("B")) == {"A", "C"}

    def test_degrees(self):
        graph = _triangle()
        assert graph.out_degree("A") == 2
        assert graph.in_degree("C") == 2
        assert graph.degree("B") == 2

    def test_missing_node_raises(self):
        graph = _triangle()
        with pytest.raises(NodeNotFoundError):
            graph.successors("Z")

    def test_missing_edge_raises(self):
        graph = _triangle()
        with pytest.raises(EdgeNotFoundError):
            graph.edge_attrs("C", "A")

    def test_edges_iteration(self):
        assert set(_triangle().edges()) == {("A", "B"), ("B", "C"), ("A", "C")}


class TestMutation:
    def test_remove_node_removes_incident_edges(self):
        graph = _triangle()
        graph.remove_node("B")
        assert "B" not in graph
        assert graph.num_edges == 1
        assert graph.has_edge("A", "C")

    def test_node_attr_set_and_get(self):
        graph = _triangle()
        graph.set_node_attr("A", "year", 1999)
        assert graph.get_node_attr("A", "year") == 1999
        assert graph.get_node_attr("A", "missing", "default") == "default"

    def test_edge_attr_set_and_get(self):
        graph = _triangle()
        graph.set_edge_attr("A", "B", "relevance", 3.0)
        assert graph.get_edge_attr("A", "B", "relevance") == 3.0


class TestDerivedGraphs:
    def test_subgraph_keeps_internal_edges_only(self):
        graph = _triangle()
        sub = graph.subgraph(["A", "B"])
        assert sub.num_nodes == 2
        assert sub.has_edge("A", "B")
        assert not sub.has_edge("B", "C")

    def test_subgraph_ignores_unknown_nodes(self):
        sub = _triangle().subgraph(["A", "Z"])
        assert sub.nodes == ("A",)

    def test_reverse_flips_edges(self):
        reversed_graph = _triangle().reverse()
        assert reversed_graph.has_edge("B", "A")
        assert not reversed_graph.has_edge("A", "B")

    def test_copy_is_independent(self):
        graph = _triangle()
        clone = graph.copy()
        clone.set_node_attr("A", "year", 2000)
        assert graph.get_node_attr("A", "year") is None
