"""Edge-case coverage for :mod:`repro.graph.shortest_paths`.

Complements ``test_graph_algorithms.py`` with the corner cases of the Dijkstra
contract that the NEWST metric closure depends on: early exit on ``targets``,
the ``include_endpoints`` switch, unreachable targets, zero-weight nodes and
the reversed-edge cost branch of undirected traversal.  Each behaviour is also
checked against the indexed kernel, which must match exactly.
"""

from __future__ import annotations

import pytest

from repro.errors import GraphError, NodeNotFoundError
from repro.graph.citation_graph import CitationGraph
from repro.graph.indexed import IndexedGraph
from repro.graph.kernels import indexed_dijkstra
from repro.graph.shortest_paths import dijkstra, shortest_path


def chain_graph() -> CitationGraph:
    """A -> B -> C -> D plus a short detour A -> X -> D."""
    graph = CitationGraph()
    for source, target in [("A", "B"), ("B", "C"), ("C", "D"), ("A", "X"), ("X", "D")]:
        graph.add_edge(source, target)
    return graph


class TestTargetsEarlyExit:
    def test_search_stops_once_targets_settle(self):
        graph = CitationGraph()
        # Source S with a near target T and a long tail the search never needs.
        graph.add_edge("S", "T")
        previous = "T"
        for i in range(20):
            node = f"TAIL{i:02d}"
            graph.add_edge(previous, node)
            previous = node
        result = dijkstra(graph, "S", targets=["T"])
        assert result.distance_to("T") == 1.0
        # The early exit leaves the far end of the tail undiscovered.
        assert "TAIL19" not in result.distances

    def test_missing_target_disables_early_exit(self):
        graph = chain_graph()
        result = dijkstra(graph, "A", targets=["NOT-IN-GRAPH"])
        # The search cannot satisfy the target set, so it settles everything.
        assert set(result.distances) == set(graph.nodes)
        assert result.distance_to("NOT-IN-GRAPH") == float("inf")

    def test_indexed_backend_matches(self):
        graph = chain_graph()
        snapshot = IndexedGraph.from_graph(graph)
        expected = dijkstra(graph, "A", targets=["D"])
        actual = indexed_dijkstra(snapshot, "A", targets=["D"])
        assert dict(actual.distances) == dict(expected.distances)


class TestIncludeEndpoints:
    NODE_COSTS = {"A": 5.0, "B": 1.0, "C": 2.0, "D": 7.0, "X": 100.0}

    def node_cost(self, node: str) -> float:
        return self.NODE_COSTS[node]

    def test_endpoint_costs_added_once(self):
        graph = chain_graph()
        # Path A-B-C-D: 3 edges + intermediates B,C = 3 + 1 + 2 = 6 by default.
        path, cost = shortest_path(graph, "A", "D", node_cost=self.node_cost)
        assert path == ["A", "B", "C", "D"]
        assert cost == 6.0
        # With endpoints included the same path also pays w(A) + w(D).
        path, cost = shortest_path(
            graph, "A", "D", node_cost=self.node_cost, include_endpoints=True
        )
        assert path == ["A", "B", "C", "D"]
        assert cost == 6.0 + 5.0 + 7.0

    def test_source_pays_its_own_cost_once(self):
        graph = chain_graph()
        result = dijkstra(graph, "A", node_cost=self.node_cost, include_endpoints=True)
        assert result.distance_to("A") == 5.0

    def test_route_choice_is_not_affected(self):
        # include_endpoints is a reporting adjustment: the heavy X node still
        # makes the detour more expensive than the chain.
        graph = chain_graph()
        result = dijkstra(graph, "A", node_cost=self.node_cost, include_endpoints=True)
        assert result.path_to("D") == ["A", "B", "C", "D"]

    def test_negative_endpoint_cost_rejected(self):
        graph = chain_graph()
        costs = dict(self.NODE_COSTS, A=-1.0)
        with pytest.raises(GraphError):
            dijkstra(graph, "A", node_cost=costs.__getitem__, include_endpoints=True)

    def test_indexed_backend_matches(self):
        graph = chain_graph()
        snapshot = IndexedGraph.from_graph(graph)
        expected = dijkstra(graph, "A", node_cost=self.node_cost, include_endpoints=True)
        actual = indexed_dijkstra(
            snapshot, "A", node_cost=self.node_cost, include_endpoints=True
        )
        assert dict(actual.distances) == dict(expected.distances)


class TestUnreachableTargets:
    def test_unreachable_component_is_absent_from_distances(self):
        graph = CitationGraph()
        graph.add_edge("A", "B")
        graph.add_edge("ISLAND1", "ISLAND2")
        result = dijkstra(graph, "A", targets=["ISLAND2"])
        assert result.distance_to("ISLAND2") == float("inf")
        assert result.path_to("ISLAND2") == []
        assert "ISLAND1" not in result.distances

    def test_shortest_path_to_unreachable_target(self):
        graph = CitationGraph()
        graph.add_edge("A", "B")
        graph.add_node("LONER")
        path, cost = shortest_path(graph, "A", "LONER")
        assert path == []
        assert cost == float("inf")

    def test_missing_source_still_raises(self):
        graph = chain_graph()
        with pytest.raises(NodeNotFoundError):
            dijkstra(graph, "GHOST")
        snapshot = IndexedGraph.from_graph(graph)
        with pytest.raises(NodeNotFoundError):
            indexed_dijkstra(snapshot, "GHOST")


class TestZeroWeightNodes:
    def test_zero_weight_intermediates_add_nothing(self):
        graph = chain_graph()
        result = dijkstra(graph, "A", node_cost=lambda _n: 0.0)
        assert result.distance_to("D") == 2.0  # A->X->D wins on hop count alone

    def test_zero_weight_hub_attracts_paths(self):
        # D is reachable via B (cost 10) or via the free hub H (cost 0).
        graph = CitationGraph()
        graph.add_edge("A", "B")
        graph.add_edge("B", "D")
        graph.add_edge("A", "H")
        graph.add_edge("H", "D")
        costs = {"A": 0.0, "B": 10.0, "D": 0.0, "H": 0.0}
        result = dijkstra(graph, "A", node_cost=costs.__getitem__)
        assert result.path_to("D") == ["A", "H", "D"]
        assert result.distance_to("D") == 2.0

    def test_zero_edge_costs_allowed(self):
        graph = chain_graph()
        result = dijkstra(graph, "A", edge_cost=lambda _u, _v: 0.0)
        assert result.distance_to("D") == 0.0


class TestReversedEdgeCostBranch:
    def test_backward_traversal_uses_directed_edge_cost(self):
        # Only B -> A exists; walking A -> B undirected must pay cost(B, A).
        graph = CitationGraph()
        graph.add_edge("B", "A")

        def edge_cost(u: str, v: str) -> float:
            assert (u, v) == ("B", "A"), "cost must be queried in edge direction"
            return 4.0

        result = dijkstra(graph, "A", edge_cost=edge_cost)
        assert result.distance_to("B") == 4.0

    def test_asymmetric_costs_pick_the_existing_direction(self):
        # A -> M exists, T -> M exists.  Route A..T crosses M: the first hop is
        # forward (cost of (A, M)), the second is reversed (cost of (T, M)).
        graph = CitationGraph()
        graph.add_edge("A", "M")
        graph.add_edge("T", "M")
        costs = {("A", "M"): 1.5, ("T", "M"): 2.5}
        result = dijkstra(graph, "A", edge_cost=lambda u, v: costs[(u, v)])
        assert result.distance_to("T") == 4.0
        assert result.path_to("T") == ["A", "M", "T"]

    def test_mutual_citation_uses_forward_direction(self):
        # When both directions exist the forward cost is the one charged.
        graph = CitationGraph()
        graph.add_edge("A", "B")
        graph.add_edge("B", "A")
        costs = {("A", "B"): 1.0, ("B", "A"): 9.0}
        result = dijkstra(graph, "A", edge_cost=lambda u, v: costs[(u, v)])
        assert result.distance_to("B") == 1.0

    def test_indexed_backend_matches_reversed_branch(self):
        graph = CitationGraph()
        graph.add_edge("B", "A")
        graph.add_edge("A", "C")
        graph.add_edge("D", "C")
        costs = {("B", "A"): 4.0, ("A", "C"): 1.0, ("D", "C"): 2.0}
        snapshot = IndexedGraph.from_graph(graph)
        expected = dijkstra(graph, "A", edge_cost=lambda u, v: costs[(u, v)])
        actual = indexed_dijkstra(snapshot, "A", edge_cost=lambda u, v: costs[(u, v)])
        assert dict(actual.distances) == dict(expected.distances)
        assert dict(actual.predecessors) == dict(expected.predecessors)
