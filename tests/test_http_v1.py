"""HTTP tests for the versioned ``/v1`` surface and the legacy aliases.

Exercises the multi-tenant server end to end over real sockets: two corpora
behind one process, runtime attach/detach, the unified error taxonomy
(400/404/409/413 with stable codes), the ``Deprecation`` header on legacy
routes, and byte-identical legacy payloads.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.config import CorpusConfig, PipelineConfig, ServingConfig
from repro.corpus.generator import CorpusGenerator
from repro.repager.app import RePaGerApp
from repro.repager.service import RePaGerService
from repro.serving import create_server, start_in_background, warm_up_registry

#: Distinct generator seed so the second tenant's corpus (and therefore its
#: payloads) differ from the shared session corpus.
SECOND_CORPUS_CONFIG = CorpusConfig(
    seed=13, papers_per_topic=20, surveys_per_topic=2, citations_per_paper=10.0
)


@pytest.fixture(scope="module")
def second_store():
    return CorpusGenerator(SECOND_CORPUS_CONFIG).generate().store


@pytest.fixture(scope="module")
def second_corpus_dir(second_store, tmp_path_factory):
    path = tmp_path_factory.mktemp("corpora") / "second"
    second_store.save(path)
    return str(path)


@pytest.fixture(scope="module")
def app(store, scholar_engine, citation_graph, venues, second_store):
    app = RePaGerApp(
        config=ServingConfig(
            port=0,
            max_workers=2,
            queue_depth=4,
            query_timeout_seconds=120.0,
            max_body_bytes=64 * 1024,
            default_corpus="alpha",
        ),
        pipeline_config=PipelineConfig(num_seeds=10),
    )
    alpha = RePaGerService(
        store,
        search_engine=scholar_engine,
        pipeline_config=PipelineConfig(num_seeds=10),
        venues=venues,
        graph=citation_graph,
    )
    app.attach_service("alpha", alpha, default=True)
    app.attach_store("beta", second_store, PipelineConfig(num_seeds=10))
    warm_up_registry(app.registry)
    yield app
    app.close(wait=False)


@pytest.fixture(scope="module")
def server(app):
    server = create_server(app, config=app.config)
    thread = start_in_background(server)
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _request(server, method: str, path: str, body: dict | bytes | None = None):
    """(status, parsed body, headers) — HTTPError bodies are parsed too."""
    data = None
    if body is not None:
        data = body if isinstance(body, bytes) else json.dumps(body).encode()
    request = urllib.request.Request(
        server.url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


class TestV1Routes:
    def test_list_corpora(self, server):
        status, body, _ = _request(server, "GET", "/v1/corpora")
        assert status == 200
        by_name = {entry["name"]: entry for entry in body["corpora"]}
        assert set(by_name) == {"alpha", "beta"}
        assert by_name["alpha"]["default"] is True
        assert by_name["beta"]["default"] is False

    def test_per_corpus_query_routes_to_the_right_tenant(self, server, app):
        results = {}
        for name in ("alpha", "beta"):
            status, body, _ = _request(
                server, "POST", f"/v1/corpora/{name}/query",
                {"query": "machine learning", "use_cache": False},
            )
            assert status == 200
            assert body["serving"]["corpus"] == name
            assert body["serving"]["cached"] is False
            results[name] = body["payload"]
        # Different corpora, different reading paths.
        assert results["alpha"]["nodes"] != results["beta"]["nodes"]
        direct = app.registry.get("beta").service.query(
            "machine learning", use_cache=False
        )
        assert results["beta"]["nodes"] == direct.to_dict()["nodes"]

    def test_per_corpus_health(self, server, app):
        status, body, _ = _request(server, "GET", "/v1/corpora/beta/healthz")
        assert status == 200
        assert body["corpus"] == "beta"
        assert body["default"] is False
        service = app.registry.get("beta").service
        assert body["config_fingerprint"] == service.pipeline.config_fingerprint
        assert body["warmed"] is True
        assert body["readiness"]["search_index_ready"] is True

    def test_aggregate_health_lists_all_corpora(self, server, app):
        status, body, _ = _request(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert set(body["corpora"]) == {"alpha", "beta"}
        assert body["default_corpus"] == "alpha"
        # Legacy mirror of the default tenant.
        assert body["papers"] == len(app.registry.get("alpha").service.store)
        # /v1/healthz serves the same document.
        status_v1, body_v1, _ = _request(server, "GET", "/v1/healthz")
        assert status_v1 == 200
        assert set(body_v1["corpora"]) == set(body["corpora"])

    def test_v1_paper_route(self, server, app):
        paper_id = app.registry.get("beta").service.store.paper_ids[0]
        status, body, _ = _request(
            server, "GET", f"/v1/corpora/beta/paper/{paper_id}"
        )
        assert status == 200
        assert body["paper_id"] == paper_id

    def test_metrics_carry_corpus_labels(self, server):
        _request(server, "POST", "/v1/corpora/beta/query", {"query": "deep learning"})
        with urllib.request.urlopen(server.url + "/metrics", timeout=30) as response:
            text = response.read().decode()
        assert 'repager_queries_total{corpus="beta"}' in text
        assert 'corpus="alpha"' in text


class TestLegacyAliases:
    def test_legacy_query_is_byte_identical_and_deprecated(self, server, app):
        status, body, headers = _request(
            server, "POST", "/query", {"query": "pretrained language models"}
        )
        assert status == 200
        assert headers.get("Deprecation") == "true"
        assert "/v1/corpora/alpha/query" in headers.get("Link", "")
        served = body.pop("served_in_seconds")
        assert served >= 0.0
        direct = app.registry.get("alpha").service.query(
            "pretrained language models"
        ).to_dict()
        # The cache makes the second computation identical including timing.
        status2, v1_body, _ = _request(
            server, "POST", "/v1/corpora/alpha/query",
            {"query": "pretrained language models"},
        )
        assert status2 == 200
        assert body["nodes"] == direct["nodes"]
        assert body["edges"] == direct["edges"]
        assert set(body) == {"query", "navigation", "nodes", "edges", "stats"}
        assert v1_body["payload"]["nodes"] == body["nodes"]

    def test_legacy_paper_route_aliases_default_corpus(self, server, app):
        paper_id = app.registry.get("alpha").service.store.paper_ids[0]
        status, body, headers = _request(server, "GET", f"/paper/{paper_id}")
        assert status == 200
        assert body["paper_id"] == paper_id
        assert headers.get("Deprecation") == "true"
        # The successor pointer is the complete, routable /v1 URL.
        successor = f"/v1/corpora/alpha/paper/{paper_id}"
        assert successor in headers.get("Link", "")
        status_v1, v1_body, _ = _request(server, "GET", successor)
        assert status_v1 == 200
        assert v1_body == body


class TestErrorPaths:
    def test_unknown_corpus_is_404_with_code(self, server):
        status, body, _ = _request(
            server, "POST", "/v1/corpora/nope/query", {"query": "x"}
        )
        assert status == 404
        assert body["code"] == "corpus_not_found"
        assert body["error"] == "corpus_not_found"
        assert body["corpus"] == "nope"

    def test_unknown_field_is_400_listing_the_typo(self, server):
        status, body, _ = _request(
            server, "POST", "/v1/corpora/alpha/query",
            {"query": "x", "year_cutof": 2015},
        )
        assert status == 400
        assert body["code"] == "unknown_fields"
        assert body["unknown_fields"] == ["year_cutof"]

    def test_unknown_variant_is_400(self, server):
        status, body, _ = _request(
            server, "POST", "/v1/corpora/alpha/query",
            {"query": "x", "variant": "NEWST-Z"},
        )
        assert status == 400
        assert body["code"] == "unknown_variant"

    def test_oversized_body_is_413(self, server, app):
        huge = {"query": "x", "exclude_ids": ["P" * 80] * 2000}
        raw = json.dumps(huge).encode()
        assert len(raw) > app.config.max_body_bytes
        status, body, _ = _request(server, "POST", "/v1/corpora/alpha/query", raw)
        assert status == 413
        assert body["code"] == "payload_too_large"
        assert body["limit_bytes"] == app.config.max_body_bytes

    def test_malformed_json_is_400(self, server):
        status, body, _ = _request(server, "POST", "/query", b"not json")
        assert status == 400
        assert body["code"] == "bad_request"
        assert body["error"] == "bad_request"

    def test_unknown_paper_is_404_with_code(self, server):
        status, body, _ = _request(server, "GET", "/v1/corpora/alpha/paper/NOPE")
        assert status == 404
        assert body["code"] == "paper_not_found"
        assert body["paper_id"] == "NOPE"

    def test_unknown_route_is_404(self, server):
        status, body, _ = _request(server, "GET", "/v1/bogus")
        assert status == 404
        assert body["code"] == "not_found"


class TestRuntimeAttachDetach:
    def test_attach_query_detach_lifecycle(self, server, second_corpus_dir):
        status, body, _ = _request(
            server, "POST", "/v1/corpora",
            {"name": "gamma", "corpus_dir": second_corpus_dir, "warm_up": False},
        )
        assert status == 201
        assert body["corpus"] == "gamma"

        status, listing, _ = _request(server, "GET", "/v1/corpora")
        assert "gamma" in {entry["name"] for entry in listing["corpora"]}

        status, query_body, _ = _request(
            server, "POST", "/v1/corpora/gamma/query", {"query": "machine learning"}
        )
        assert status == 200
        assert query_body["serving"]["corpus"] == "gamma"

        status, detach_body, _ = _request(server, "DELETE", "/v1/corpora/gamma")
        assert status == 200
        assert detach_body["detached"] == "gamma"
        assert "gamma" not in detach_body["remaining"]

        status, body, _ = _request(
            server, "POST", "/v1/corpora/gamma/query", {"query": "x"}
        )
        assert status == 404
        assert body["code"] == "corpus_not_found"

    def test_duplicate_attach_is_409(self, server, second_corpus_dir):
        status, body, _ = _request(
            server, "POST", "/v1/corpora",
            {"name": "alpha", "corpus_dir": second_corpus_dir},
        )
        assert status == 409
        assert body["code"] == "corpus_exists"

    def test_attach_bad_directory_is_400(self, server):
        status, body, _ = _request(
            server, "POST", "/v1/corpora",
            {"name": "ghost", "corpus_dir": "/nonexistent/dir"},
        )
        assert status == 400
        assert body["code"] == "bad_request"

    def test_attach_unknown_field_is_400(self, server, second_corpus_dir):
        status, body, _ = _request(
            server, "POST", "/v1/corpora",
            {"name": "x", "corpus_dir": second_corpus_dir, "warmup": True},
        )
        assert status == 400
        assert body["code"] == "unknown_fields"
        assert body["unknown_fields"] == ["warmup"]

    def test_detach_unknown_corpus_is_404(self, server):
        status, body, _ = _request(server, "DELETE", "/v1/corpora/never-attached")
        assert status == 404
        assert body["code"] == "corpus_not_found"


class TestTenantLifecycleSurfaces:
    """PR 5 surfaces: per-tenant overrides, warm attach, 429 shape, eviction."""

    def test_attach_with_overrides_surfaces_them_in_corpus_health(
        self, server, second_corpus_dir
    ):
        status, body, _ = _request(
            server, "POST", "/v1/corpora",
            {
                "name": "epsilon",
                "corpus_dir": second_corpus_dir,
                "warm_up": False,
                "overrides": {
                    "cache_ttl_seconds": 5.0,
                    "query_timeout_seconds": 60.0,
                    "quota": {"max_in_flight": 2, "max_queued": 1},
                },
            },
        )
        assert status == 201
        assert body["resident"] is True
        status, health, _ = _request(server, "GET", "/v1/corpora/epsilon")
        assert status == 200
        assert health["resident"] is True
        assert health["evicted"] is False
        assert health["overrides"]["cache_ttl_seconds"] == 5.0
        assert health["overrides"]["query_timeout_seconds"] == 60.0
        assert health["overrides"]["quota"]["max_in_flight"] == 2
        assert health["quota_usage"] == {
            "admitted": 0, "executing": 0, "queued": 0, "rejected_total": 0,
        }
        _request(server, "DELETE", "/v1/corpora/epsilon")

    def test_attach_with_bad_overrides_is_400(self, server, second_corpus_dir):
        status, body, _ = _request(
            server, "POST", "/v1/corpora",
            {
                "name": "never",
                "corpus_dir": second_corpus_dir,
                "overrides": {"quota": {"max_inflight": 2}},
            },
        )
        assert status == 400
        assert body["code"] == "unknown_fields"
        assert body["unknown_fields"] == ["max_inflight"]
        status, _, _ = _request(server, "GET", "/v1/corpora/never")
        assert status == 404

    def test_warm_attach_from_snapshot_path(
        self, server, app, second_corpus_dir, tmp_path
    ):
        from repro.corpus.storage import CorpusStore
        from repro.repager.service import RePaGerService
        from repro.serving import capture_snapshot, warm_up

        donor = RePaGerService(
            CorpusStore.load(second_corpus_dir),
            pipeline_config=PipelineConfig(num_seeds=10),
        )
        warm_up(donor)
        snapshot_path = tmp_path / "zeta.snapshot.json"
        capture_snapshot(donor, snapshot_path)

        status, body, _ = _request(
            server, "POST", "/v1/corpora",
            {
                "name": "zeta",
                "corpus_dir": second_corpus_dir,
                "snapshot": str(snapshot_path),
            },
        )
        assert status == 201
        assert body["warmed"] is True
        assert all(body["readiness"].values())
        assert body["snapshot_path"] == str(snapshot_path)
        # Snapshot-warmed serving matches the donor byte for byte.
        status, query_body, _ = _request(
            server, "POST", "/v1/corpora/zeta/query",
            {"query": "machine learning", "use_cache": False},
        )
        assert status == 200
        direct = donor.query("machine learning", use_cache=False)
        assert query_body["payload"]["nodes"] == direct.to_dict()["nodes"]
        _request(server, "DELETE", "/v1/corpora/zeta")

    def test_attach_with_mismatched_snapshot_is_409_and_rolls_back(
        self, server, second_corpus_dir, tmp_path
    ):
        from repro.corpus.storage import CorpusStore
        from repro.repager.service import RePaGerService
        from repro.serving import capture_snapshot

        # A snapshot captured under a *different* pipeline configuration.
        drifted = RePaGerService(
            CorpusStore.load(second_corpus_dir),
            pipeline_config=PipelineConfig(num_seeds=12),
        )
        snapshot_path = tmp_path / "drifted.snapshot.json"
        capture_snapshot(drifted, snapshot_path)
        status, body, _ = _request(
            server, "POST", "/v1/corpora",
            {
                "name": "drift",
                "corpus_dir": second_corpus_dir,
                "snapshot": str(snapshot_path),
            },
        )
        assert status == 409
        assert body["code"] == "snapshot_mismatch"
        # The failed attach left no half-attached tenant behind.
        status, _, _ = _request(server, "GET", "/v1/corpora/drift")
        assert status == 404

    def test_quota_429_payload_shape_and_retry_after(
        self, server, second_corpus_dir
    ):
        # burst=1 with a near-zero refill rate: the second request is
        # rejected deterministically no matter how fast the first one ran.
        status, _, _ = _request(
            server, "POST", "/v1/corpora",
            {
                "name": "rho",
                "corpus_dir": second_corpus_dir,
                "warm_up": False,
                "overrides": {"quota": {"rate_per_second": 0.01, "burst": 1}},
            },
        )
        assert status == 201
        status, _, _ = _request(
            server, "POST", "/v1/corpora/rho/query",
            {"query": "machine learning"},
        )
        assert status == 200
        status, body, headers = _request(
            server, "POST", "/v1/corpora/rho/query",
            {"query": "machine learning"},
        )
        assert status == 429
        assert body["code"] == "tenant_quota_exceeded"
        assert body["error"] == "tenant_quota_exceeded"
        assert body["http_status"] == 429
        assert body["corpus"] == "rho"
        assert body["retry_after_seconds"] > 0
        assert int(headers["Retry-After"]) >= 1
        _request(server, "DELETE", "/v1/corpora/rho")

    def test_eviction_visibility_and_transparent_reattach(
        self, server, app, second_corpus_dir
    ):
        status, _, _ = _request(
            server, "POST", "/v1/corpora",
            {"name": "sigma", "corpus_dir": second_corpus_dir, "warm_up": False},
        )
        assert status == 201
        app.evict("sigma")

        # Listed with a resident/evicted state flag instead of vanishing.
        status, listing, _ = _request(server, "GET", "/v1/corpora")
        by_name = {entry["name"]: entry for entry in listing["corpora"]}
        assert by_name["sigma"]["resident"] is False
        assert by_name["alpha"]["resident"] is True

        # Health reports the eviction record without re-attaching.
        status, health, _ = _request(server, "GET", "/v1/corpora/sigma")
        assert status == 200
        assert health["status"] == "evicted"
        assert health["resident"] is False
        assert health["evicted"] is True
        assert "sigma" in app.registry.evicted_names()

        # Aggregate health stays green and names the evicted tenant.
        status, aggregate, _ = _request(server, "GET", "/v1/healthz")
        assert aggregate["status"] == "ok"
        assert "sigma" in aggregate["evicted_corpora"]

        # A query transparently re-attaches; the flags flip back.
        status, query_body, _ = _request(
            server, "POST", "/v1/corpora/sigma/query", {"query": "deep learning"}
        )
        assert status == 200
        assert query_body["serving"]["corpus"] == "sigma"
        status, health, _ = _request(server, "GET", "/v1/corpora/sigma")
        assert health["resident"] is True
        status, detach_body, _ = _request(server, "DELETE", "/v1/corpora/sigma")
        assert status == 200


class TestObservabilitySurfaces:
    """Request ids, trace endpoints, event log and per-variant serving stats."""

    def _request_with_headers(self, server, method, path, body=None, headers=None):
        data = json.dumps(body).encode() if body is not None else None
        request_headers = {"Content-Type": "application/json"} if data else {}
        request_headers.update(headers or {})
        request = urllib.request.Request(
            server.url + path, data=data, method=method, headers=request_headers
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return response.status, json.loads(response.read()), dict(response.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read()), dict(exc.headers)

    def test_every_response_carries_a_request_id(self, server):
        _, _, headers = _request(server, "GET", "/v1/healthz")
        minted = headers["X-Request-Id"]
        assert len(minted) == 16 and all(c in "0123456789abcdef" for c in minted)
        # Errors carry one too.
        _, _, error_headers = _request(server, "GET", "/v1/corpora/none-such")
        assert error_headers["X-Request-Id"]

    def test_caller_request_id_is_echoed_end_to_end(self, server):
        status, body, headers = self._request_with_headers(
            server,
            "POST",
            "/v1/corpora/alpha/query",
            {"query": "information retrieval"},
            headers={"X-Request-Id": "caller-id-42"},
        )
        assert status == 200
        assert headers["X-Request-Id"] == "caller-id-42"
        assert body["serving"]["request_id"] == "caller-id-42"

    def test_debug_query_and_trace_endpoints(self, server):
        status, body, _ = _request(
            server,
            "POST",
            "/v1/corpora/beta/query",
            {"query": "graph mining traces", "debug": True, "use_cache": False},
        )
        assert status == 200
        trace = body["serving"]["trace"]
        assert trace["corpus"] == "beta"
        stage_names = {span["name"] for span in trace["spans"]}
        assert {"quota_admission", "queue_wait", "pipeline"} <= stage_names

        status, listing, _ = _request(server, "GET", "/v1/traces?corpus=beta&limit=5")
        assert status == 200
        assert listing["slow_threshold_seconds"] > 0
        assert listing["traces"][0]["trace_id"] == trace["trace_id"]
        assert all(entry["corpus"] == "beta" for entry in listing["traces"])
        assert len(listing["traces"]) <= 5
        # Summaries never inline the span tree; the detail route does.
        assert "spans" not in listing["traces"][0]

        status, detail, _ = _request(server, "GET", f"/v1/traces/{trace['trace_id']}")
        assert status == 200
        assert {span["name"] for span in detail["spans"]} == stage_names

    def test_unknown_trace_is_404_with_code(self, server):
        status, body, _ = _request(server, "GET", "/v1/traces/ffffffffffffffff")
        assert status == 404
        assert body["code"] == "trace_not_found"
        assert body["trace_id"] == "ffffffffffffffff"

    def test_bad_traces_limit_is_400(self, server):
        status, body, _ = _request(server, "GET", "/v1/traces?limit=soon")
        assert status == 400
        assert body["code"] == "bad_request"
        status, body, _ = _request(server, "GET", "/v1/traces?limit=0")
        assert status == 400

    def test_event_log_endpoint_lists_lifecycle_events(self, server, app):
        status, body, _ = _request(server, "GET", "/v1/events")
        assert status == 200
        assert body["last_seq"] >= len(body["events"]) > 0
        for record in body["events"]:
            assert set(record) == {"seq", "ts", "event", "corpus", "detail"}
        attaches = [e for e in body["events"] if e["event"] == "corpus_attach"]
        assert {"alpha", "beta"} <= {e["corpus"] for e in attaches}

        status, filtered, _ = _request(
            server, "GET", "/v1/events?event=corpus_attach&corpus=alpha&limit=1"
        )
        assert status == 200
        assert len(filtered["events"]) == 1
        assert filtered["events"][0]["event"] == "corpus_attach"
        assert filtered["events"][0]["corpus"] == "alpha"

    def test_corpus_health_surfaces_per_variant_stats(self, server):
        for _ in range(2):
            status, _, _ = _request(
                server,
                "POST",
                "/v1/corpora/beta/query",
                {"query": "information retrieval", "variant": "NEWST-C"},
            )
            assert status == 200
        status, health, _ = _request(server, "GET", "/v1/corpora/beta")
        assert status == 200
        variants = health["variants"]
        assert {"default", "NEWST-C"} <= set(variants)
        entry = variants["NEWST-C"]
        assert entry["queries"] >= 2
        assert entry["cache_hits"] >= 1
        assert entry["cache_entries"] >= 1
        assert entry["config_fingerprint"] != variants["default"]["config_fingerprint"]


def test_create_server_rejects_overrides_for_ready_app(app):
    """metrics/executor overrides are constructor arguments of RePaGerApp;
    silently dropping them for a ready app would be a confusing no-op."""
    from repro.serving import MetricsRegistry

    with pytest.raises(ValueError):
        create_server(app, metrics=MetricsRegistry())
