"""Unit tests for the baseline reading-list methods."""

from __future__ import annotations

import pytest

from repro.baselines.pagerank_rerank import PageRankBaseline
from repro.baselines.scibert_matcher import SciBertMatcherBaseline
from repro.baselines.search_topk import SearchTopKBaseline
from repro.errors import ConfigurationError


class TestSearchTopKBaseline:
    def test_returns_engine_ranking(self, scholar_engine):
        baseline = SearchTopKBaseline(scholar_engine)
        assert baseline.name == scholar_engine.name
        assert baseline.generate("deep learning", k=10) == scholar_engine.search_ids(
            "deep learning", top_k=10
        )

    def test_respects_cutoff_and_exclusions(self, scholar_engine, store):
        baseline = SearchTopKBaseline(scholar_engine)
        first = baseline.generate("deep learning", k=5)
        result = baseline.generate("deep learning", k=5, year_cutoff=2010,
                                   exclude_ids=first[:1])
        assert first[0] not in result
        assert all(store.get_paper(pid).year <= 2010 for pid in result)


class TestPageRankBaseline:
    def test_returns_k_papers_ordered_by_pagerank(self, scholar_engine, citation_graph):
        baseline = PageRankBaseline(scholar_engine, citation_graph, num_seeds=10)
        papers = baseline.generate("machine learning", k=15)
        assert len(papers) == 15
        scores = [baseline._scores[pid] for pid in papers]
        assert scores == sorted(scores, reverse=True)

    def test_prefers_globally_famous_papers(self, scholar_engine, citation_graph, store):
        """The PageRank baseline ignores query relevance beyond seeding — the
        failure mode the paper describes (it returns the most-cited papers)."""
        baseline = PageRankBaseline(scholar_engine, citation_graph, num_seeds=10)
        papers = baseline.generate("hate speech detection", k=10)
        mean_citations = sum(store.get_paper(p).citation_count for p in papers) / len(papers)
        corpus_mean = sum(p.citation_count for p in store) / len(store)
        assert mean_citations > corpus_mean


class TestSciBertMatcherBaseline:
    @pytest.fixture(scope="class")
    def trained(self, scholar_engine, citation_graph, store):
        baseline = SciBertMatcherBaseline(scholar_engine, citation_graph, store, num_seeds=10)
        return baseline.train(store.surveys[:10], max_examples=300)

    def test_training_requires_surveys(self, scholar_engine, citation_graph, store):
        baseline = SciBertMatcherBaseline(scholar_engine, citation_graph, store)
        with pytest.raises(ConfigurationError):
            baseline.train([])

    def test_generates_k_papers(self, trained):
        papers = trained.generate("hate speech detection", k=12)
        assert len(papers) == 12
        assert len(set(papers)) == 12

    def test_ranking_is_semantic(self, trained, store):
        """Most returned papers should be lexically/semantically related to the query."""
        papers = trained.generate("hate speech detection", k=10, )
        related = 0
        for pid in papers:
            text = store.get_paper(pid).text.lower()
            if any(token in text for token in ("hate", "speech", "abusive", "offensive",
                                               "sentiment", "classification", "text")):
                related += 1
        assert related >= 5

    def test_respects_exclusions(self, trained):
        first = trained.generate("hate speech detection", k=5)
        excluded = trained.generate("hate speech detection", k=5, exclude_ids=first[:1])
        assert first[0] not in excluded
