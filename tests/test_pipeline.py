"""Integration-level tests for the full RePaGer pipeline and its variants."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import PipelineConfig
from repro.core.pipeline import VARIANT_CONFIGS, RePaGerPipeline, make_variant_config
from repro.errors import PipelineError


@pytest.fixture(scope="module")
def pipeline_result(pipeline):
    return pipeline.generate("pretrained language models")


class TestPipelineGeneration:
    def test_result_has_all_stages(self, pipeline_result):
        assert len(pipeline_result.initial_seeds) > 0
        assert len(pipeline_result.reallocated_seeds) > 0
        assert len(pipeline_result.terminals) > 0
        assert pipeline_result.subgraph_nodes > len(pipeline_result.initial_seeds)
        assert pipeline_result.tree is not None
        assert pipeline_result.elapsed_seconds > 0

    def test_reading_path_contains_the_tree(self, pipeline_result):
        assert set(pipeline_result.tree.nodes) <= pipeline_result.reading_path.paper_set

    def test_ranked_papers_truncation(self, pipeline_result):
        assert len(pipeline_result.ranked_papers(10)) == 10
        assert pipeline_result.ranked_papers(10) == pipeline_result.ranked_papers()[:10]

    def test_padding_guarantees_requested_length(self, pipeline):
        result = pipeline.generate("hate speech detection", pad_to=55)
        assert len(result.ranked_papers()) >= 55

    def test_excluded_ids_never_appear(self, pipeline, sample_instance):
        result = pipeline.generate(
            sample_instance.query,
            year_cutoff=sample_instance.year,
            exclude_ids=(sample_instance.survey_id,),
        )
        assert sample_instance.survey_id not in result.reading_path.paper_set

    def test_year_cutoff_respected_for_expanded_papers(self, pipeline, store):
        result = pipeline.generate("deep learning", year_cutoff=2012)
        for paper_id in result.reading_path.papers:
            if paper_id in store and paper_id not in set(result.initial_seeds):
                assert store.get_paper(paper_id).year <= 2012

    def test_reading_path_includes_papers_outside_seed_list(self, pipeline_result, store):
        """The path must contain prerequisite papers that the search engine
        did not return (the paper's Fig. 9 observation)."""
        seeds = set(pipeline_result.initial_seeds)
        extra = [p for p in pipeline_result.tree.nodes if p not in seeds]
        assert extra

    def test_reading_path_spans_multiple_topics(self, pipeline_result, store):
        topics = {store.get_paper(p).topic for p in pipeline_result.tree.nodes if p in store}
        assert len(topics) > 1

    def test_unknown_query_raises(self, pipeline):
        with pytest.raises(PipelineError):
            pipeline.generate("zzzz gibberish nonsense")

    def test_determinism(self, pipeline):
        first = pipeline.generate("graph neural networks")
        second = pipeline.generate("graph neural networks")
        assert first.reading_path.papers == second.reading_path.papers


class TestVariants:
    def test_all_table3_variants_are_defined(self):
        assert set(VARIANT_CONFIGS) == {
            "NEWST", "NEWST-W", "NEWST-U", "NEWST-I", "NEWST-C", "NEWST-N", "NEWST-E",
        }

    def test_unknown_variant_rejected(self):
        with pytest.raises(PipelineError):
            make_variant_config("NEWST-X")

    def test_variant_configs_set_expected_fields(self):
        assert make_variant_config("NEWST-W").seed_strategy == "initial"
        assert make_variant_config("NEWST-U").seed_strategy == "union"
        assert make_variant_config("NEWST-I").seed_strategy == "intersection"
        assert make_variant_config("NEWST-C").steiner_only is False
        assert make_variant_config("NEWST-N").use_node_weights is False
        assert make_variant_config("NEWST-E").use_edge_weights is False

    @pytest.mark.parametrize("variant", ["NEWST-W", "NEWST-U", "NEWST-I", "NEWST-N", "NEWST-E"])
    def test_variants_generate_paths(self, store, scholar_engine, citation_graph, variant):
        config = make_variant_config(variant, PipelineConfig(num_seeds=15))
        variant_pipeline = RePaGerPipeline(store, scholar_engine, graph=citation_graph,
                                           config=config)
        result = variant_pipeline.generate("hate speech detection")
        assert len(result.ranked_papers(20)) == 20
        assert result.tree is not None

    def test_newst_c_has_no_tree(self, store, scholar_engine, citation_graph):
        config = make_variant_config("NEWST-C", PipelineConfig(num_seeds=15))
        variant_pipeline = RePaGerPipeline(store, scholar_engine, graph=citation_graph,
                                           config=config)
        result = variant_pipeline.generate("hate speech detection")
        assert result.tree is None
        assert result.reading_path.edges == ()
        assert len(result.ranked_papers(20)) == 20

    def test_newst_w_terminals_are_initial_seeds(self, store, scholar_engine, citation_graph):
        config = make_variant_config("NEWST-W", PipelineConfig(num_seeds=15))
        variant_pipeline = RePaGerPipeline(store, scholar_engine, graph=citation_graph,
                                           config=config)
        result = variant_pipeline.generate("hate speech detection")
        assert set(result.terminals) <= set(result.initial_seeds)

    def test_newst_u_terminals_superset_of_both(self, store, scholar_engine, citation_graph):
        config = make_variant_config("NEWST-U", PipelineConfig(num_seeds=15))
        variant_pipeline = RePaGerPipeline(store, scholar_engine, graph=citation_graph,
                                           config=config)
        result = variant_pipeline.generate("hate speech detection")
        in_graph_seeds = {s for s in result.initial_seeds if s in citation_graph}
        assert in_graph_seeds <= set(result.terminals)
        assert set(result.reallocated_seeds) <= set(result.terminals)

    def test_seed_count_changes_subgraph_size(self, store, scholar_engine, citation_graph):
        small = RePaGerPipeline(store, scholar_engine, graph=citation_graph,
                                config=PipelineConfig(num_seeds=5))
        large = RePaGerPipeline(store, scholar_engine, graph=citation_graph,
                                config=PipelineConfig(num_seeds=25))
        query = "machine learning"
        assert small.generate(query).subgraph_nodes <= large.generate(query).subgraph_nodes

    def test_variant_override_preserves_other_fields(self):
        base = PipelineConfig(num_seeds=17)
        variant = make_variant_config("NEWST-N", base)
        assert variant.num_seeds == 17
        assert dataclasses.asdict(variant.newst) == dataclasses.asdict(base.newst)
