"""Unit tests for metrics, the benchmark evaluator, human evaluation and timing."""

from __future__ import annotations

import pytest

from repro.baselines.base import ReadingListMethod
from repro.baselines.search_topk import SearchTopKBaseline
from repro.config import EvaluationConfig
from repro.errors import EvaluationError
from repro.eval.evaluator import MethodScores, OverlapEvaluator, PipelineMethodAdapter, neighborhood_overlap_study
from repro.eval.human import CRITERIA, SimulatedAnnotator, run_human_evaluation
from repro.eval.metrics import MetricTriple, f1_at_k, overlap_ratio, precision_at_k, recall_at_k
from repro.eval.timing import measure_runtime
from repro.types import ReadingPath, ReadingPathEdge

import random


class TestMetrics:
    def test_precision_counts_hits_over_k(self):
        assert precision_at_k(["a", "b", "c"], {"a", "c"}, k=3) == pytest.approx(2 / 3)

    def test_precision_penalises_short_lists(self):
        assert precision_at_k(["a"], {"a"}, k=10) == pytest.approx(0.1)

    def test_recall_counts_hits_over_relevant(self):
        assert recall_at_k(["a", "b"], {"a", "c", "d"}, k=2) == pytest.approx(1 / 3)

    def test_recall_with_empty_ground_truth_is_zero(self):
        assert recall_at_k(["a"], set(), k=1) == 0.0

    def test_f1_is_harmonic_mean(self):
        triple = f1_at_k(["a", "b", "c", "d"], {"a", "b", "x", "y"}, k=4)
        assert triple.precision == pytest.approx(0.5)
        assert triple.recall == pytest.approx(0.5)
        assert triple.f1 == pytest.approx(0.5)

    def test_f1_zero_when_no_overlap(self):
        assert f1_at_k(["a"], {"b"}, k=1).f1 == 0.0

    def test_duplicates_rejected(self):
        with pytest.raises(EvaluationError):
            precision_at_k(["a", "a"], {"a"}, k=2)

    def test_invalid_k_rejected(self):
        with pytest.raises(EvaluationError):
            precision_at_k(["a"], {"a"}, k=0)

    def test_overlap_ratio(self):
        assert overlap_ratio({"a", "b"}, {"a", "b", "c", "d"}) == pytest.approx(0.5)
        assert overlap_ratio({"a"}, set()) == 0.0

    def test_metric_triple_arithmetic(self):
        total = MetricTriple(1.0, 0.5, 0.6) + MetricTriple(0.0, 0.5, 0.4)
        assert total.scaled(0.5) == MetricTriple(0.5, 0.5, 0.5)


class _OracleMethod(ReadingListMethod):
    """Returns the ground truth itself — must score perfectly.

    The evaluator passes the survey id in ``exclude_ids``, which lets the
    oracle pick the right instance even when two surveys share a query.
    """

    name = "oracle"

    def __init__(self, bank):
        self._bank = {i.survey_id: i for i in bank}

    def generate(self, query, k, year_cutoff=None, exclude_ids=()):
        instance = self._bank[next(iter(exclude_ids))]
        return sorted(instance.label(1))[:k]


class _EmptyMethod(ReadingListMethod):
    name = "empty"

    def generate(self, query, k, year_cutoff=None, exclude_ids=()):
        return []


class TestOverlapEvaluator:
    def test_oracle_scores_maximal_precision(self, survey_bank, evaluation_config):
        evaluator = OverlapEvaluator(survey_bank, evaluation_config)
        scores = evaluator.evaluate(_OracleMethod(survey_bank))
        assert scores.precision(1, 10) == pytest.approx(1.0)
        assert scores.recall(1, 30) <= 1.0
        assert scores.num_surveys > 0

    def test_empty_method_scores_zero(self, survey_bank, evaluation_config):
        evaluator = OverlapEvaluator(survey_bank, evaluation_config)
        scores = evaluator.evaluate(_EmptyMethod())
        assert scores.f1(1, 10) == 0.0

    def test_search_baseline_beats_empty(self, survey_bank, scholar_engine, evaluation_config):
        evaluator = OverlapEvaluator(survey_bank, evaluation_config)
        baseline = evaluator.evaluate(SearchTopKBaseline(scholar_engine, "google"))
        assert baseline.f1(1, 20) > 0.0

    def test_scores_decrease_with_occurrence_level(self, survey_bank, scholar_engine,
                                                   evaluation_config):
        """Higher occurrence levels have smaller ground truths, so recall-driven
        F1 at the same K cannot systematically increase."""
        evaluator = OverlapEvaluator(survey_bank, evaluation_config)
        scores = evaluator.evaluate(SearchTopKBaseline(scholar_engine, "google"))
        assert scores.precision(1, 20) >= scores.precision(2, 20) >= scores.precision(3, 20)

    def test_pipeline_adapter_caches_per_query(self, pipeline, survey_bank, evaluation_config):
        adapter = PipelineMethodAdapter(pipeline, "NEWST")
        instance = next(iter(survey_bank.filter(min_references=15)))
        first = adapter.generate(instance.query, k=10, year_cutoff=instance.year,
                                 exclude_ids=(instance.survey_id,))
        second = adapter.generate(instance.query, k=20, year_cutoff=instance.year,
                                  exclude_ids=(instance.survey_id,))
        assert first == second[:10]
        assert len(adapter._cache) == 1

    def test_unknown_score_lookup_raises(self):
        scores = MethodScores(method="m")
        with pytest.raises(EvaluationError):
            scores.f1(1, 10)

    def test_to_rows_flattens_scores(self, survey_bank, scholar_engine, evaluation_config):
        evaluator = OverlapEvaluator(survey_bank, evaluation_config)
        scores = evaluator.evaluate(SearchTopKBaseline(scholar_engine, "google"))
        rows = scores.to_rows()
        assert len(rows) == len(evaluation_config.k_values) * len(evaluation_config.occurrence_levels)
        assert {"method", "occurrence_level", "k", "precision", "recall", "f1"} <= set(rows[0])

    def test_empty_benchmark_rejected(self, survey_bank):
        with pytest.raises(EvaluationError):
            OverlapEvaluator(survey_bank, EvaluationConfig(min_references=10_000))


class TestNeighborhoodOverlapStudy:
    def test_overlap_grows_with_order(self, survey_bank, scholar_engine, citation_graph):
        ratios = neighborhood_overlap_study(
            survey_bank.filter(min_references=15), scholar_engine, citation_graph,
            top_k=20, max_surveys=5,
        )
        for level in (1, 2, 3):
            assert ratios[0][level] <= ratios[1][level] <= ratios[2][level]
        assert ratios[2][1] > ratios[0][1]

    def test_empty_bank_rejected(self, scholar_engine, citation_graph, survey_bank):
        empty = survey_bank.filter(min_references=10_000)
        with pytest.raises(EvaluationError):
            neighborhood_overlap_study(empty, scholar_engine, citation_graph)


class TestHumanEvaluation:
    def test_annotator_prefers_clearly_better_system(self):
        annotator = SimulatedAnnotator(annotator_id=0, noise=0.01)
        rng = random.Random(0)
        assert annotator.judge("relevance", 0.9, 0.1, rng) == "A"
        assert annotator.judge("relevance", 0.1, 0.9, rng) == "B"

    def test_annotator_reports_ties(self):
        annotator = SimulatedAnnotator(annotator_id=0, noise=0.0, indifference=0.2)
        rng = random.Random(0)
        assert annotator.judge("relevance", 0.5, 0.55, rng) == "same"

    def test_unknown_criterion_rejected(self):
        with pytest.raises(EvaluationError):
            SimulatedAnnotator(0).judge("novelty", 0.5, 0.5, random.Random(0))

    def test_structured_output_preferred_on_prerequisite(self, survey_bank, citation_graph,
                                                         pipeline, scholar_engine):
        instances = [i for i in survey_bank if i.num_references >= 15][:3]
        cases = []
        for instance in instances:
            flat = ReadingPath.from_papers(
                instance.query,
                scholar_engine.search_ids(instance.query, top_k=20,
                                          year_cutoff=instance.year,
                                          exclude_ids=[instance.survey_id]),
            )
            structured = pipeline.generate(
                instance.query, year_cutoff=instance.year,
                exclude_ids=(instance.survey_id,),
            ).reading_path
            cases.append((instance, flat, structured))
        result = run_human_evaluation("Artificial Intelligence", cases, citation_graph,
                                      num_annotators=4)
        prefer_a, same, prefer_b = result.row("prerequisite")
        assert prefer_b > prefer_a
        assert prefer_a + same + prefer_b == pytest.approx(100.0)
        assert set(result.prefer_b) == set(CRITERIA)

    def test_no_cases_rejected(self, citation_graph):
        with pytest.raises(EvaluationError):
            run_human_evaluation("AI", [], citation_graph)


class TestTiming:
    def test_measure_runtime_reports_cases_and_average(self, pipeline, survey_bank):
        instances = [i for i in survey_bank if i.num_references >= 15][:3]
        cases, average = measure_runtime(pipeline, instances)
        assert len(cases) == 3
        assert all(case.seconds > 0 for case in cases)
        assert average.query == "average"
        assert min(c.num_nodes for c in cases) <= average.num_nodes <= max(
            c.num_nodes for c in cases
        )

    def test_all_failures_raise(self, pipeline, survey_bank):
        import dataclasses as dc
        instance = next(iter(survey_bank))
        broken = dc.replace(instance, key_phrases=("zzzz gibberish nonsense",))
        with pytest.raises(EvaluationError):
            measure_runtime(pipeline, [broken])
