"""Unit tests for collection, filtering, labels and the SurveyBank builder."""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.corpus.s2orc import papers_to_s2orc
from repro.dataset.collection import collect_survey_candidates
from repro.dataset.documents import render_synthetic_pdf
from repro.dataset.filtering import filter_documents, normalize_title
from repro.dataset.grobid import GrobidParser
from repro.dataset.labels import key_phrases_for_title, occurrence_labels
from repro.dataset.surveybank import SurveyBank, SurveyBankBuilder
from repro.errors import DatasetError


class TestCollection:
    def test_s2orc_branch_finds_all_surveys(self, store, taxonomy):
        result = collect_survey_candidates(store, taxonomy, s2orc_records=None)
        survey_ids = set(store.survey_ids)
        assert survey_ids <= set(result.candidate_ids)

    def test_s2orc_records_branch(self, store, taxonomy):
        records = papers_to_s2orc(store.papers)
        result = collect_survey_candidates(store, taxonomy, s2orc_records=records)
        assert set(store.survey_ids) <= set(result.candidate_ids)
        assert result.from_s2orc

    def test_search_branch_issues_topic_queries(self, store, taxonomy, scholar_engine):
        result = collect_survey_candidates(
            store, taxonomy, search_engine=scholar_engine,
            topic_keywords=["pretrained language models", "hate speech detection"],
            results_per_query=10,
        )
        assert len(result.queries_issued) == 2
        assert all("survey" in query for query in result.queries_issued)
        assert result.from_search

    def test_total_counts_distinct_candidates(self, store, taxonomy):
        result = collect_survey_candidates(store, taxonomy)
        assert result.total == len(result.candidate_ids)
        assert len(set(result.candidate_ids)) == result.total


class TestFiltering:
    def test_normalize_title(self):
        assert normalize_title("A Survey: on Widgets!") == "a survey on widgets"
        assert normalize_title("  A   Survey on Widgets ") == "a survey on widgets"

    def _documents(self, store, count: int = 6):
        parser = GrobidParser()
        documents = []
        for index, survey in enumerate(store.surveys[:count]):
            pdf = render_synthetic_pdf(survey, store, rng=random.Random(index),
                                       corruption_rate=0.0, oversize_rate=0.0)
            documents.append(parser.parse(pdf))
        return documents

    def test_page_count_rule(self, store):
        documents = self._documents(store, 3)
        oversized = dataclasses.replace(documents[0], page_count=300)
        kept, report = filter_documents([oversized, *documents[1:]])
        assert oversized.paper_id in report.dropped_page_count
        assert oversized.paper_id not in report.kept
        assert len(kept) == 2

    def test_duplicate_titles_dropped(self, store):
        documents = self._documents(store, 2)
        duplicate = dataclasses.replace(documents[0], paper_id="DUP")
        kept, report = filter_documents([*documents, duplicate])
        assert "DUP" in report.dropped_duplicate_title
        assert len(kept) == 2

    def test_minimum_reference_rule(self, store):
        documents = self._documents(store, 2)
        sparse = dataclasses.replace(
            documents[0],
            paper_id="SPARSE",
            title="a completely different survey title",
            bibliography=documents[0].bibliography[:2],
        )
        kept, report = filter_documents([*documents, sparse], min_references=10)
        assert "SPARSE" in report.dropped_no_references

    def test_parse_failures_recorded(self, store):
        documents = self._documents(store, 2)
        kept, report = filter_documents(documents, parse_failures=["BROKEN"])
        assert report.dropped_parse_failure == ["BROKEN"]
        assert report.summary()["kept"] == len(kept)
        assert report.num_dropped >= 1


class TestLabels:
    def test_occurrence_labels_are_nested(self):
        labels = occurrence_labels({"a": 1, "b": 2, "c": 5})
        assert labels[1] == frozenset({"a", "b", "c"})
        assert labels[2] == frozenset({"b", "c"})
        assert labels[3] == frozenset({"c"})

    def test_invalid_inputs_rejected(self):
        with pytest.raises(DatasetError):
            occurrence_labels({"a": 0})
        with pytest.raises(DatasetError):
            occurrence_labels({"a": 1}, levels=(0,))

    def test_key_phrases_for_title(self):
        phrases = key_phrases_for_title("A survey on hate speech detection")
        assert phrases[0] == "hate speech detection"

    def test_key_phrases_empty_title_raises(self):
        with pytest.raises(DatasetError):
            key_phrases_for_title("a survey of the")


class TestSurveyBankBuilder:
    def test_full_pipeline_builds_benchmark(self, store, taxonomy, venues):
        builder = SurveyBankBuilder(store, taxonomy, venues=venues)
        bank = builder.build(min_references=10)
        assert len(bank) > 0
        assert builder.last_filter_report is not None
        assert builder.last_collection is not None
        # Every kept instance corresponds to a survey of the corpus with the
        # exact occurrence labels the generator intended.
        for instance in bank:
            survey = store.get_survey(instance.survey_id)
            assert instance.label(1) == survey.label(1)
            assert instance.label(2) == survey.label(2)

    def test_pipeline_and_fast_path_agree_on_labels(self, store, taxonomy, venues):
        builder_bank = SurveyBankBuilder(store, taxonomy, venues=venues).build(min_references=10)
        fast_bank = SurveyBank.from_corpus(store, venues=venues)
        common = set(builder_bank.survey_ids) & set(fast_bank.survey_ids)
        assert common
        for survey_id in list(common)[:20]:
            assert builder_bank.get(survey_id).label(1) == fast_bank.get(survey_id).label(1)
