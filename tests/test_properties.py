"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dataset.labels import occurrence_labels
from repro.eval.metrics import f1_at_k, overlap_ratio, precision_at_k, recall_at_k
from repro.graph.citation_graph import CitationGraph
from repro.graph.mst import minimum_spanning_tree
from repro.graph.pagerank import pagerank
from repro.graph.steiner import node_edge_weighted_steiner_tree
from repro.graph.traversal import connected_components, k_hop_neighborhood
from repro.textproc.tokenizer import tokenize
from repro.types import ReadingPath

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

node_ids = st.integers(min_value=0, max_value=24).map(lambda i: f"N{i}")


@st.composite
def directed_graphs(draw, min_edges: int = 1, max_edges: int = 40):
    """Random small directed graphs without self-loops."""
    edges = draw(
        st.lists(
            st.tuples(node_ids, node_ids).filter(lambda e: e[0] != e[1]),
            min_size=min_edges,
            max_size=max_edges,
        )
    )
    graph = CitationGraph()
    for source, target in edges:
        graph.add_edge(source, target)
    return graph


occurrence_maps = st.dictionaries(
    st.text(alphabet="abcdefgh", min_size=1, max_size=3),
    st.integers(min_value=1, max_value=6),
    min_size=1,
    max_size=20,
)

prediction_lists = st.lists(
    st.integers(min_value=0, max_value=50).map(str), min_size=1, max_size=30, unique=True
)
relevant_sets = st.sets(st.integers(min_value=0, max_value=50).map(str), max_size=30)


# ---------------------------------------------------------------------------
# Graph invariants
# ---------------------------------------------------------------------------

@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(graph=directed_graphs())
def test_pagerank_is_a_probability_distribution(graph):
    scores = pagerank(graph, max_iterations=50)
    assert abs(sum(scores.values()) - 1.0) < 1e-6
    assert all(score >= 0 for score in scores.values())
    assert set(scores) == set(graph.nodes)


@settings(max_examples=40, deadline=None)
@given(graph=directed_graphs(), order=st.integers(min_value=0, max_value=3))
def test_k_hop_neighbourhoods_are_monotone_in_order(graph, order):
    seeds = list(graph.nodes)[:3]
    smaller = set(k_hop_neighborhood(graph, seeds, order))
    larger = set(k_hop_neighborhood(graph, seeds, order + 1))
    assert smaller <= larger
    assert set(seeds) <= smaller


@settings(max_examples=40, deadline=None)
@given(graph=directed_graphs())
def test_connected_components_partition_the_graph(graph):
    components = connected_components(graph)
    nodes = [node for component in components for node in component]
    assert sorted(nodes) == sorted(graph.nodes)
    assert sum(len(c) for c in components) == graph.num_nodes


@settings(max_examples=40, deadline=None)
@given(graph=directed_graphs(min_edges=3))
def test_steiner_tree_spans_terminals_and_is_acyclic(graph):
    components = connected_components(graph)
    component = sorted(components[0])
    terminals = component[: min(4, len(component))]
    tree = node_edge_weighted_steiner_tree(graph, terminals, require_all_terminals=False)
    assert tree.is_tree()
    assert tree.terminals <= tree.nodes
    # A tree over n nodes has exactly n-1 edges.
    if tree.nodes:
        assert len(tree.edges) == len(tree.nodes) - 1


@settings(max_examples=40, deadline=None)
@given(
    weights=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=3, max_size=15),
)
def test_mst_of_a_cycle_drops_exactly_one_edge(weights):
    nodes = [f"N{i}" for i in range(len(weights))]
    edges = [
        (nodes[i], nodes[(i + 1) % len(nodes)], weights[i]) for i in range(len(nodes))
    ]
    tree = minimum_spanning_tree(nodes, edges)
    assert len(tree) == len(nodes) - 1
    total = sum(w for _, _, w in tree)
    assert total <= sum(weights) - min(weights) + 1e-9


# ---------------------------------------------------------------------------
# Metric invariants
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(predicted=prediction_lists, relevant=relevant_sets, k=st.integers(min_value=1, max_value=40))
def test_metrics_are_bounded_and_consistent(predicted, relevant, k):
    precision = precision_at_k(predicted, relevant, k)
    recall = recall_at_k(predicted, relevant, k)
    triple = f1_at_k(predicted, relevant, k)
    assert 0.0 <= precision <= 1.0
    assert 0.0 <= recall <= 1.0
    assert 0.0 <= triple.f1 <= 1.0
    assert triple.f1 <= max(precision, recall) + 1e-9
    if precision > 0 and recall > 0:
        assert triple.f1 >= min(precision, recall) - 1e-9
    else:
        assert triple.f1 == 0.0


@settings(max_examples=60, deadline=None)
@given(predicted=prediction_lists, relevant=relevant_sets)
def test_overlap_ratio_bounded_by_one(predicted, relevant):
    ratio = overlap_ratio(predicted, relevant)
    assert 0.0 <= ratio <= 1.0
    if relevant and set(predicted) >= relevant:
        assert ratio == 1.0


@settings(max_examples=60, deadline=None)
@given(occurrences=occurrence_maps)
def test_occurrence_labels_are_nested_chains(occurrences):
    labels = occurrence_labels(occurrences, levels=(1, 2, 3, 4))
    assert labels[4] <= labels[3] <= labels[2] <= labels[1]
    assert labels[1] == frozenset(occurrences)


# ---------------------------------------------------------------------------
# Types and text invariants
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(papers=st.lists(st.text(alphabet="abcdef", min_size=1, max_size=4), min_size=1,
                       max_size=15, unique=True))
def test_reading_path_topological_order_is_a_permutation(papers):
    path = ReadingPath.from_papers("query", papers)
    assert sorted(path.topological_order()) == sorted(papers)
    assert path.paper_set == frozenset(papers)


@settings(max_examples=60, deadline=None)
@given(text=st.text(max_size=200))
def test_tokenizer_never_returns_stopwords_or_uppercase(text):
    tokens = tokenize(text)
    assert all(token == token.lower() for token in tokens)
    assert all(len(token) >= 2 for token in tokens)
    assert "the" not in tokens
