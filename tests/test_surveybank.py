"""Unit tests for the SurveyBank benchmark object and its statistics."""

from __future__ import annotations

import pytest

from repro.dataset.statistics import (
    citation_bins,
    compute_statistics,
    reference_bins,
    topic_distribution,
    year_bins,
)
from repro.dataset.surveybank import UNCERTAIN_DOMAIN, SurveyBank, SurveyBankInstance
from repro.errors import DatasetError


class TestSurveyBankBasics:
    def test_from_corpus_builds_one_instance_per_survey(self, store, survey_bank):
        assert len(survey_bank) == len(store.surveys)

    def test_instances_have_nested_labels(self, survey_bank):
        for instance in survey_bank:
            assert instance.label(3) <= instance.label(2) <= instance.label(1)
            assert len(instance.label(1)) == instance.num_references

    def test_duplicate_instances_rejected(self, survey_bank):
        instance = survey_bank.instances[0]
        with pytest.raises(DatasetError):
            SurveyBank([instance, instance])

    def test_get_unknown_instance_raises(self, survey_bank):
        with pytest.raises(DatasetError):
            survey_bank.get("nope")

    def test_label_for_unknown_level_raises(self, survey_bank):
        with pytest.raises(DatasetError):
            survey_bank.instances[0].label(7)

    def test_score_formula(self):
        instance = SurveyBankInstance(
            survey_id="S", title="t", year=2016, domain=UNCERTAIN_DOMAIN,
            key_phrases=("x",), labels={1: frozenset({"a"})},
            citation_count=50, num_references=30,
        )
        assert instance.score == pytest.approx(50 / (2020 - 2016 + 1))

    def test_round_trip_serialisation(self, survey_bank, tmp_path):
        path = tmp_path / "bank.jsonl"
        survey_bank.save(path)
        restored = SurveyBank.load(path)
        assert restored.survey_ids == survey_bank.survey_ids
        first = survey_bank.instances[0]
        assert restored.get(first.survey_id).label(2) == first.label(2)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            SurveyBank.load(tmp_path / "missing.jsonl")


class TestSelection:
    def test_filter_by_min_references(self, survey_bank):
        filtered = survey_bank.filter(min_references=25)
        assert all(i.num_references >= 25 for i in filtered)
        assert len(filtered) <= len(survey_bank)

    def test_filter_by_domain(self, survey_bank):
        domains = {i.domain for i in survey_bank}
        some_domain = next(iter(domains))
        filtered = survey_bank.filter(domains=[some_domain])
        assert all(i.domain == some_domain for i in filtered)

    def test_top_scoring_orders_by_score(self, survey_bank):
        top = survey_bank.top_scoring(10)
        assert len(top) == 10
        scores = [i.score for i in top]
        assert min(scores) >= sorted((i.score for i in survey_bank), reverse=True)[10 - 1]

    def test_sample_is_deterministic(self, survey_bank):
        assert survey_bank.sample(5, seed=3).survey_ids == survey_bank.sample(5, seed=3).survey_ids

    def test_split_partitions_the_benchmark(self, survey_bank):
        train, test = survey_bank.split(train_fraction=0.75, seed=1)
        assert len(train) + len(test) == len(survey_bank)
        assert not set(train.survey_ids) & set(test.survey_ids)

    def test_split_invalid_fraction_rejected(self, survey_bank):
        with pytest.raises(DatasetError):
            survey_bank.split(train_fraction=1.5)

    def test_by_domain_covers_all_instances(self, survey_bank):
        grouped = survey_bank.by_domain()
        assert sum(len(v) for v in grouped.values()) == len(survey_bank)


class TestStatistics:
    def test_histograms_cover_every_survey(self, survey_bank):
        assert sum(year_bins(survey_bank).values()) == len(survey_bank)
        assert sum(reference_bins(survey_bank).values()) == len(survey_bank)
        assert sum(citation_bins(survey_bank).values()) <= len(survey_bank)

    def test_topic_distribution_matches_size(self, survey_bank):
        distribution = topic_distribution(survey_bank)
        assert sum(distribution.values()) == len(survey_bank)
        assert UNCERTAIN_DOMAIN in distribution

    def test_full_statistics_bundle(self, survey_bank):
        stats = compute_statistics(survey_bank)
        assert stats.num_surveys == len(survey_bank)
        assert stats.mean_references > 10
        assert 0.0 <= stats.fraction_uncited <= 1.0
        assert 0.0 <= stats.fraction_highly_cited <= 1.0
        assert 0.0 < stats.fraction_recent <= 1.0
        assert stats.to_dict()["num_surveys"] == stats.num_surveys

    def test_statistics_on_empty_bank(self):
        stats = compute_statistics(SurveyBank([]))
        assert stats.num_surveys == 0
        assert stats.mean_references == 0.0

    def test_statistics_shape_mirrors_paper(self, survey_bank):
        """Qualitative Fig. 4 / Sec. III-C checks: some surveys are uncited,
        few are extremely cited, and most are recent."""
        stats = compute_statistics(survey_bank)
        assert stats.fraction_uncited > 0.05
        assert stats.fraction_highly_cited < 0.5
        assert stats.fraction_recent > 0.6
