"""Randomized equivalence: indexed (CSR) backend vs the dict-of-dicts backend.

The indexed graph core (:mod:`repro.graph.indexed` / :mod:`repro.graph.kernels`)
promises *identical* results to the dict implementations — same distances and
predecessors from Dijkstra (heap ties included), same metric closure, same
Steiner trees, bit-identical PageRank.  These tests enforce that promise on
seeded random graphs sweeping density, weight regimes (including the tie-heavy
unit-cost case) and disconnected components, so future kernel rewrites cannot
silently drift.
"""

from __future__ import annotations

import random

import pytest

from repro.graph.citation_graph import CitationGraph
from repro.graph.indexed import IndexedGraph
from repro.graph.kernels import indexed_dijkstra, indexed_k_hop, indexed_pagerank
from repro.graph.pagerank import pagerank
from repro.graph.shortest_paths import dijkstra
from repro.graph.steiner import metric_closure, node_edge_weighted_steiner_tree
from repro.graph.traversal import k_hop_neighborhood

# Each case: (seed, num_nodes, edge_factor, weighted, components)
#   edge_factor: average out-degree of the random graph
#   weighted:    False -> unit edge costs / zero node costs (maximally tie-heavy)
#   components:  number of disjoint clusters the nodes are split into
CASES = [
    (1, 12, 1.2, False, 1),
    (2, 20, 2.5, True, 1),
    (3, 30, 4.0, True, 1),
    (4, 25, 1.5, False, 3),
    (5, 40, 3.0, True, 2),
    (6, 8, 0.8, True, 2),
    (7, 35, 5.0, False, 1),
    (8, 50, 2.0, True, 4),
]


def make_random_case(seed: int, num_nodes: int, edge_factor: float,
                     weighted: bool, components: int):
    """A seeded random directed graph plus matching cost functions.

    Node ids are inserted in shuffled order so that insertion order and
    lexicographic order disagree — the regime where heap tie-breaking between
    the two backends could diverge if the snapshot's ``sort_rank`` were wrong.
    """
    rng = random.Random(seed)
    names = [f"N{i:03d}" for i in range(num_nodes)]
    insertion = names[:]
    rng.shuffle(insertion)
    graph = CitationGraph()
    for name in insertion:
        graph.add_node(name)

    # Split nodes into disjoint clusters; edges only ever stay in-cluster.
    clusters: list[list[str]] = [[] for _ in range(components)]
    for position, name in enumerate(names):
        clusters[position % components].append(name)

    edge_costs: dict[tuple[str, str], float] = {}
    node_costs: dict[str, float] = {}
    for cluster in clusters:
        target_edges = max(1, int(len(cluster) * edge_factor))
        for _ in range(target_edges):
            source, target = rng.sample(cluster, 2) if len(cluster) >= 2 else (None, None)
            if source is None:
                continue
            graph.add_edge(source, target)
            if (source, target) not in edge_costs:
                edge_costs[(source, target)] = (
                    round(rng.uniform(0.1, 5.0), 3) if weighted else 1.0
                )
    for name in names:
        node_costs[name] = round(rng.uniform(0.0, 2.0), 3) if weighted else 0.0

    def edge_cost(u: str, v: str) -> float:
        return edge_costs.get((u, v), 1.0)

    def node_cost(n: str) -> float:
        return node_costs[n]

    return graph, edge_cost, node_cost, rng


@pytest.mark.parametrize("seed,n,factor,weighted,components", CASES)
def test_dijkstra_equivalence(seed, n, factor, weighted, components):
    graph, edge_cost, node_cost, rng = make_random_case(seed, n, factor, weighted, components)
    snapshot = IndexedGraph.from_graph(graph)
    sources = rng.sample(sorted(graph.nodes), min(5, len(graph)))
    for source in sources:
        for undirected in (True, False):
            expected = dijkstra(
                graph, source, edge_cost, node_cost, undirected=undirected
            )
            actual = indexed_dijkstra(
                snapshot, source, edge_cost, node_cost, undirected=undirected
            )
            assert dict(actual.distances) == dict(expected.distances)
            assert dict(actual.predecessors) == dict(expected.predecessors)


@pytest.mark.parametrize("seed,n,factor,weighted,components", CASES)
def test_dijkstra_targets_and_endpoints_equivalence(seed, n, factor, weighted, components):
    graph, edge_cost, node_cost, rng = make_random_case(seed, n, factor, weighted, components)
    snapshot = IndexedGraph.from_graph(graph)
    nodes = sorted(graph.nodes)
    source = rng.choice(nodes)
    targets = rng.sample(nodes, min(4, len(nodes))) + ["MISSING-TARGET"]
    for include_endpoints in (False, True):
        expected = dijkstra(
            graph, source, edge_cost, node_cost,
            targets=targets, include_endpoints=include_endpoints,
        )
        actual = indexed_dijkstra(
            snapshot, source, edge_cost, node_cost,
            targets=targets, include_endpoints=include_endpoints,
        )
        assert dict(actual.distances) == dict(expected.distances)
        assert dict(actual.predecessors) == dict(expected.predecessors)


@pytest.mark.parametrize("seed,n,factor,weighted,components", CASES)
def test_metric_closure_equivalence(seed, n, factor, weighted, components):
    graph, edge_cost, node_cost, rng = make_random_case(seed, n, factor, weighted, components)
    snapshot = IndexedGraph.from_graph(graph)
    terminals = rng.sample(sorted(graph.nodes), min(7, len(graph)))
    expected_dist, expected_paths = metric_closure(graph, terminals, edge_cost, node_cost)
    actual_dist, actual_paths = metric_closure(
        graph, terminals, edge_cost, node_cost, snapshot=snapshot
    )
    assert actual_dist == expected_dist
    assert actual_paths == expected_paths


@pytest.mark.parametrize("seed,n,factor,weighted,components", CASES)
def test_steiner_tree_equivalence(seed, n, factor, weighted, components):
    graph, edge_cost, node_cost, rng = make_random_case(seed, n, factor, weighted, components)
    snapshot = IndexedGraph.from_graph(graph)
    terminals = rng.sample(sorted(graph.nodes), min(6, len(graph)))
    expected = node_edge_weighted_steiner_tree(
        graph, terminals, edge_cost, node_cost, require_all_terminals=False
    )
    actual = node_edge_weighted_steiner_tree(
        graph, terminals, edge_cost, node_cost,
        require_all_terminals=False, snapshot=snapshot,
    )
    assert actual.nodes == expected.nodes
    assert actual.edges == expected.edges
    assert actual.terminals == expected.terminals
    assert actual.total_cost == pytest.approx(expected.total_cost, abs=1e-9)
    assert actual.edge_cost_total == pytest.approx(expected.edge_cost_total, abs=1e-9)
    assert actual.node_cost_total == pytest.approx(expected.node_cost_total, abs=1e-9)


@pytest.mark.parametrize("seed,n,factor,weighted,components", CASES)
def test_pagerank_equivalence_bit_identical(seed, n, factor, weighted, components):
    graph, _, _, _ = make_random_case(seed, n, factor, weighted, components)
    snapshot = IndexedGraph.from_graph(graph)
    expected = pagerank(graph)
    actual = indexed_pagerank(snapshot)
    assert set(actual) == set(expected)
    for node, score in expected.items():
        # Bit-identical by design: every accumulation runs in insertion order.
        assert actual[node] == score


def test_pagerank_personalization_equivalence():
    graph, _, _, rng = make_random_case(9, 30, 3.0, True, 1)
    snapshot = IndexedGraph.from_graph(graph)
    nodes = sorted(graph.nodes)
    personalization = {node: rng.random() for node in rng.sample(nodes, 10)}
    expected = pagerank(graph, personalization=personalization)
    actual = indexed_pagerank(snapshot, personalization=personalization)
    for node, score in expected.items():
        assert actual[node] == score


@pytest.mark.parametrize("seed,n,factor,weighted,components", CASES)
def test_k_hop_truncation_equivalence(seed, n, factor, weighted, components):
    """``max_nodes`` truncation keeps the same node *dict* as the reference.

    The random graphs insert edges in shuffled order (not source-major), so
    this exercises the interned predecessor-order array: a snapshot whose
    in-adjacency followed ascending source index instead of insertion order
    would truncate a different prefix for directions ``in`` and ``both``.
    """
    graph, _, _, rng = make_random_case(seed, n, factor, weighted, components)
    snapshot = IndexedGraph.from_graph(graph)
    nodes = sorted(graph.nodes)
    seeds = rng.sample(nodes, min(3, len(nodes)))
    for direction in ("out", "in", "both"):
        for order in (1, 2, 3):
            full = k_hop_neighborhood(graph, seeds, order, direction=direction)
            for max_nodes in (None, 1, len(full) // 2 or 1, len(full)):
                expected = k_hop_neighborhood(
                    graph, seeds, order, direction=direction, max_nodes=max_nodes
                )
                actual = indexed_k_hop(
                    snapshot, seeds, order, direction=direction, max_nodes=max_nodes
                )
                assert actual == expected


def test_k_hop_truncation_with_out_of_order_edges():
    """Regression: edges added target-first must truncate like the dict graph.

    Before the predecessor-order array was interned, the snapshot's lazy
    in-adjacency followed ascending source index, so a graph built in
    non-source-major order truncated a different node set once ``max_nodes``
    bit mid-scan.
    """
    graph = CitationGraph()
    for name in ("HUB", "Z", "M", "A", "Q"):
        graph.add_node(name)
    # Predecessors of HUB in insertion order: Z, M, A, Q — the reverse of
    # ascending source index (A, M, Q, Z after interning sorted node ids).
    graph.add_edge("Z", "HUB")
    graph.add_edge("M", "HUB")
    graph.add_edge("A", "HUB")
    graph.add_edge("Q", "HUB")
    snapshot = IndexedGraph.from_graph(graph)
    for direction in ("in", "both"):
        for cap in (2, 3):
            expected = k_hop_neighborhood(
                graph, ["HUB"], 1, direction=direction, max_nodes=cap
            )
            actual = indexed_k_hop(
                snapshot, ["HUB"], 1, direction=direction, max_nodes=cap
            )
            assert actual == expected
            assert list(actual) == list(expected)


def test_induced_snapshot_matches_from_graph_of_subgraph():
    graph, edge_cost, node_cost, rng = make_random_case(10, 40, 3.0, True, 1)
    parent = IndexedGraph.from_graph(graph)
    kept = rng.sample(sorted(graph.nodes), 25)
    induced = parent.induced(kept)
    direct = IndexedGraph.from_graph(graph.subgraph(kept))
    assert set(induced.node_ids) == set(direct.node_ids)
    assert induced.num_edges == direct.num_edges
    # Same search results either way.
    source = min(induced.node_ids)
    a = indexed_dijkstra(induced, source, edge_cost, node_cost)
    b = indexed_dijkstra(direct, source, edge_cost, node_cost)
    assert dict(a.distances) == dict(b.distances)
    assert dict(a.predecessors) == dict(b.predecessors)
