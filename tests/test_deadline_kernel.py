"""Deadline checkpoints inside the Dijkstra relaxation loop.

PR 8 added cooperative deadline shedding at stage boundaries; a long metric
closure between two checkpoints could still blow the budget.  The kernel now
polls ``check_deadline`` every ~1024 heap pops, so a query sheds *during* the
solve — these tests pin that, and that the checkpoint costs nothing when no
deadline is armed.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import DeadlineExceededError
from repro.graph.citation_graph import CitationGraph
from repro.graph.indexed import IndexedGraph
from repro.graph.kernels import indexed_dijkstra
from repro.resilience.deadline import deadline_scope


@pytest.fixture(scope="module")
def long_chain() -> IndexedGraph:
    """A 2000-node path: a single source search pops every node (> 1024)."""
    graph = CitationGraph()
    for i in range(1999):
        graph.add_edge(f"n{i}", f"n{i + 1}")
    return IndexedGraph.from_graph(graph)


def test_expired_deadline_sheds_inside_the_relaxation_loop(long_chain):
    with deadline_scope(time.monotonic() - 1.0):
        with pytest.raises(DeadlineExceededError) as excinfo:
            indexed_dijkstra(long_chain, "n0")
    # The shed happened mid-solve, at the kernel's own checkpoint — not at a
    # pipeline stage boundary.
    assert excinfo.value.stage == "metric_closure_relaxation"


def test_small_searches_never_reach_the_checkpoint(long_chain):
    """Under 1024 pops the bitmask never fires: an expired deadline is not
    observed by the kernel (stage boundaries still catch it)."""
    graph = CitationGraph()
    for i in range(50):
        graph.add_edge(f"m{i}", f"m{i + 1}")
    small = IndexedGraph.from_graph(graph)
    with deadline_scope(time.monotonic() - 1.0):
        result = indexed_dijkstra(small, "m0")
    assert len(result.distances) == 51


def test_no_deadline_means_no_behaviour_change(long_chain):
    result = indexed_dijkstra(long_chain, "n0")
    assert len(result.distances) == 2000
    assert result.distances["n1999"] == pytest.approx(1999.0)


def test_future_deadline_lets_the_solve_finish(long_chain):
    with deadline_scope(time.monotonic() + 60.0):
        result = indexed_dijkstra(long_chain, "n0")
    assert len(result.distances) == 2000


def test_metric_closure_sheds_mid_batch(long_chain):
    """The paper's hot path — one early-exiting Dijkstra per terminal — is
    where a query's X-Request-Deadline budget actually runs out; the batched
    closure must surface the kernel checkpoint's shed, not finish the batch."""
    from repro.graph.kernels import indexed_metric_closure

    costs = long_chain.bind_costs(None, None)
    with deadline_scope(time.monotonic() - 1.0):
        with pytest.raises(DeadlineExceededError) as excinfo:
            indexed_metric_closure(long_chain, costs, ["n0", "n1999"])
    assert excinfo.value.stage == "metric_closure_relaxation"
