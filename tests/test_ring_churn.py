"""Property-based churn over the consistent-hash ring.

The router's whole operability story (failover, drain, rebalance) rests on
three ring properties that must hold under *any* interleaving of joins,
leaves and drains — not just the happy paths the end-to-end tests walk:

1. **Placement is a pure function of membership**: a ring that reached a
   membership through churn places every key exactly like a fresh ring
   built from that membership (so routers can be restarted, replaced, or
   audited offline).
2. **Movement is minimal (~K/N per step)**: a leave moves only the departed
   replica's keys; a join steals only ~K/(N+1) keys, all of them onto the
   joiner.  Nothing else may move — that is the entire point of consistent
   hashing.
3. **Preference order is prefix-stable**: removing a replica deletes it
   from every key's failover order without reordering the survivors, so
   in-flight failover decisions stay valid across churn.

Sequences are seeded ``random.Random`` walks: deterministic, reproducible
from the printed seed, and covering join/leave mixes no hand-written case
would.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster.ring import ConsistentHashRing

KEYS = [f"corpus-{i}" for i in range(60)]
POOL = [f"http://10.0.0.{i}:8080" for i in range(1, 11)]
VNODES = 64
RING_SEED = 3
CHURN_STEPS = 12
SEEDS = [0, 1, 7, 42, 1337]


def _churn_step(rng: random.Random, ring: ConsistentHashRing, members: set[str]) -> tuple[str, str]:
    """One random join or leave; never empties the ring. Returns (op, url)."""
    can_join = len(members) < len(POOL)
    can_leave = len(members) > 1
    if can_join and (not can_leave or rng.random() < 0.5):
        url = rng.choice([u for u in POOL if u not in members])
        ring.add_replica(url)
        members.add(url)
        return "join", url
    url = rng.choice(sorted(members))
    ring.remove_replica(url)
    members.discard(url)
    return "leave", url


@pytest.mark.parametrize("seed", SEEDS)
def test_placement_is_a_pure_function_of_final_membership(seed):
    rng = random.Random(seed)
    members = set(POOL[:4])
    ring = ConsistentHashRing(sorted(members), vnodes=VNODES, seed=RING_SEED)
    for _ in range(CHURN_STEPS):
        _churn_step(rng, ring, members)
    fresh = ConsistentHashRing(sorted(members), vnodes=VNODES, seed=RING_SEED)
    for key in KEYS:
        assert ring.place(key) == fresh.place(key), f"seed={seed} key={key}"
        assert ring.preference(key) == fresh.preference(key), f"seed={seed} key={key}"


@pytest.mark.parametrize("seed", SEEDS)
def test_each_step_moves_about_k_over_n_keys(seed):
    rng = random.Random(seed)
    members = set(POOL[:5])
    ring = ConsistentHashRing(sorted(members), vnodes=VNODES, seed=RING_SEED)
    for step in range(CHURN_STEPS):
        before = {key: ring.place(key) for key in KEYS}
        op, url = _churn_step(rng, ring, members)
        after = {key: ring.place(key) for key in KEYS}
        moved = {key for key in KEYS if before[key] != after[key]}
        context = f"seed={seed} step={step} {op} {url}"
        if op == "leave":
            # Exactly the departed replica's keys move; nobody else's.
            assert moved == {k for k, owner in before.items() if owner == url}, context
        else:
            # Every moved key lands on the joiner, and the steal is ~K/N —
            # bounded well under a full reshuffle (vnodes keep the variance
            # tight, but this is a tail bound, not an exact split).
            assert all(after[key] == url for key in moved), context
            expected = len(KEYS) / len(members)
            assert len(moved) <= 3 * expected, context


@pytest.mark.parametrize("seed", SEEDS)
def test_preference_order_is_prefix_stable_under_churn(seed):
    rng = random.Random(seed)
    members = set(POOL[:5])
    ring = ConsistentHashRing(sorted(members), vnodes=VNODES, seed=RING_SEED)
    for step in range(CHURN_STEPS):
        before = {key: ring.preference(key) for key in KEYS}
        op, url = _churn_step(rng, ring, members)
        after = {key: ring.preference(key) for key in KEYS}
        for key in KEYS:
            context = f"seed={seed} step={step} {op} {url} key={key}"
            if op == "leave":
                # A drain/leave deletes the replica from every failover
                # order without reordering the survivors.
                assert after[key] == [u for u in before[key] if u != url], context
            else:
                # A join inserts the new replica somewhere; the existing
                # order is preserved around it.
                assert [u for u in after[key] if u != url] == before[key], context
