"""Unit tests for the node-edge weighted Steiner tree (KMB heuristic)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import DisconnectedTerminalsError, GraphError, NodeNotFoundError
from repro.graph.citation_graph import CitationGraph
from repro.graph.steiner import metric_closure, node_edge_weighted_steiner_tree


def _grid_graph() -> CitationGraph:
    """A small graph where the optimal Steiner tree needs an intermediate node.

        A - M - B
            |
            C

    Terminals {A, B, C} are pairwise non-adjacent; M is the natural Steiner node.
    """
    graph = CitationGraph()
    for source, target in [("A", "M"), ("M", "B"), ("M", "C")]:
        graph.add_edge(source, target)
    return graph


class TestSteinerBasics:
    def test_star_uses_intermediate_node(self):
        tree = node_edge_weighted_steiner_tree(_grid_graph(), ["A", "B", "C"])
        assert tree.nodes == frozenset({"A", "B", "C", "M"})
        assert tree.is_tree()
        assert tree.steiner_nodes == frozenset({"M"})

    def test_single_terminal(self):
        tree = node_edge_weighted_steiner_tree(_grid_graph(), ["A"], node_cost=lambda n: 2.0)
        assert tree.nodes == frozenset({"A"})
        assert tree.edges == ()
        assert tree.total_cost == pytest.approx(2.0)

    def test_two_adjacent_terminals(self):
        tree = node_edge_weighted_steiner_tree(_grid_graph(), ["A", "M"])
        assert tree.nodes == frozenset({"A", "M"})
        assert len(tree.edges) == 1

    def test_no_terminals_rejected(self):
        with pytest.raises(GraphError):
            node_edge_weighted_steiner_tree(_grid_graph(), [])

    def test_unknown_terminal_rejected(self):
        with pytest.raises(NodeNotFoundError):
            node_edge_weighted_steiner_tree(_grid_graph(), ["A", "Z"])

    def test_spans_all_terminals(self):
        tree = node_edge_weighted_steiner_tree(_grid_graph(), ["A", "B"])
        assert {"A", "B"} <= tree.nodes

    def test_duplicate_terminals_deduplicated(self):
        tree = node_edge_weighted_steiner_tree(_grid_graph(), ["A", "A", "B"])
        assert tree.terminals == frozenset({"A", "B"})


class TestDisconnectedTerminals:
    def _disconnected(self) -> CitationGraph:
        graph = _grid_graph()
        graph.add_edge("X", "Y")
        return graph

    def test_raises_when_required(self):
        with pytest.raises(DisconnectedTerminalsError):
            node_edge_weighted_steiner_tree(
                self._disconnected(), ["A", "X"], require_all_terminals=True
            )

    def test_spans_largest_group_when_allowed(self):
        tree = node_edge_weighted_steiner_tree(
            self._disconnected(), ["A", "B", "X"], require_all_terminals=False
        )
        assert {"A", "B"} <= tree.nodes
        assert "X" not in tree.nodes


class TestWeights:
    def test_edge_costs_steer_path_choice(self):
        # Two routes between T1 and T2: direct expensive edge vs cheap two-hop path.
        graph = CitationGraph()
        graph.add_edge("T1", "T2")
        graph.add_edge("T1", "mid")
        graph.add_edge("mid", "T2")
        costs = {("T1", "T2"): 10.0, ("T1", "mid"): 1.0, ("mid", "T2"): 1.0}

        def edge_cost(u: str, v: str) -> float:
            return costs.get((u, v), costs.get((v, u), 1.0))

        tree = node_edge_weighted_steiner_tree(graph, ["T1", "T2"], edge_cost=edge_cost)
        assert "mid" in tree.nodes
        assert tree.edge_cost_total == pytest.approx(2.0)

    def test_node_costs_steer_path_choice(self):
        # Two possible intermediate nodes; the cheap one must be chosen.
        graph = CitationGraph()
        graph.add_edge("T1", "cheap")
        graph.add_edge("cheap", "T2")
        graph.add_edge("T1", "pricey")
        graph.add_edge("pricey", "T2")
        node_costs = {"cheap": 0.1, "pricey": 50.0, "T1": 0.0, "T2": 0.0}
        tree = node_edge_weighted_steiner_tree(
            graph, ["T1", "T2"], node_cost=lambda n: node_costs[n]
        )
        assert "cheap" in tree.nodes
        assert "pricey" not in tree.nodes

    def test_total_cost_decomposition(self):
        tree = node_edge_weighted_steiner_tree(
            _grid_graph(), ["A", "B", "C"],
            edge_cost=lambda u, v: 2.0, node_cost=lambda n: 1.0,
        )
        assert tree.total_cost == pytest.approx(tree.edge_cost_total + tree.node_cost_total)
        assert tree.edge_cost_total == pytest.approx(2.0 * len(tree.edges))
        assert tree.node_cost_total == pytest.approx(float(len(tree.nodes)))


class TestApproximationQuality:
    def test_within_kmb_bound_of_networkx_steiner(self, citation_graph):
        """On a real subgraph our tree cost stays within the 2x KMB bound of
        networkx's own approximation (both are approximations, so we compare
        against each other rather than the unknown optimum)."""
        nodes = list(citation_graph.nodes)[:300]
        subgraph = citation_graph.subgraph(nodes)
        # Pick terminals inside the largest undirected component.
        nx_graph = nx.Graph(list(subgraph.edges()))
        if nx_graph.number_of_nodes() == 0:
            pytest.skip("subgraph has no edges")
        component = max(nx.connected_components(nx_graph), key=len)
        terminals = sorted(component)[:6]
        if len(terminals) < 3:
            pytest.skip("component too small")
        ours = node_edge_weighted_steiner_tree(subgraph, terminals)
        theirs = nx.algorithms.approximation.steiner_tree(
            nx_graph.subgraph(component).copy(), terminals
        )
        ours_cost = len(ours.edges)
        theirs_cost = theirs.number_of_edges()
        assert ours_cost <= 2 * max(theirs_cost, 1)
        assert ours.is_tree()

    def test_metric_closure_symmetry(self):
        graph = _grid_graph()
        distances, paths = metric_closure(graph, ["A", "B", "C"])
        assert distances[("A", "B")] == pytest.approx(2.0)
        assert paths[("A", "B")][0] == "A"
        assert paths[("A", "B")][-1] == "B"

    def test_pruning_removes_dangling_steiner_leaves(self):
        # A path graph where a side branch should never survive pruning.
        graph = CitationGraph()
        for source, target in [("A", "B"), ("B", "C"), ("B", "D")]:
            graph.add_edge(source, target)
        tree = node_edge_weighted_steiner_tree(graph, ["A", "C"])
        assert "D" not in tree.nodes
