"""Reusable in-process cluster plumbing for router/replica tests.

Every cluster test used to hand-roll the same spawn/wait/kill choreography:
build N ``serve --empty`` replicas on ephemeral ports, front them with a
:class:`~repro.cluster.router.RouterApp`, bootstrap placement, and tear the
whole stack down in the right order.  This module extracts that plumbing so
tests say *what* cluster they want, not *how* to wire one::

    with ClusterFixture(replicas=3, corpora={"alpha": (alpha_dir, snap)}) as c:
        status, body, headers = c.request("POST", "/v1/corpora/alpha/query",
                                          {"query": "...", "use_cache": False})

Design points, in the order they bit us before extraction:

* **Port allocation** is delegated to the OS (``port=0``); the harness never
  picks port numbers, so parallel test runs cannot collide.
* **Readiness is polled, never slept for**: :meth:`ClusterFixture.wait_ready`
  hits every replica's and the router's ``/healthz`` until they answer 200
  (with a hard deadline), so tests start exactly when the fleet is up.
* **State capture on failure**: leaving the context manager on an exception
  dumps the router's health report and recent lifecycle events to stderr
  before teardown, so a red CI run shows *which* replica was down and what
  the router last did about it.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.parse
import urllib.request
from types import SimpleNamespace

from repro.cluster import CorpusSpec, RouterApp
from repro.cluster.router import create_router_server, start_router_in_background
from repro.config import PipelineConfig, ServingConfig
from repro.repager.app import RePaGerApp
from repro.repager.service import RePaGerService
from repro.serving import parse_metrics_text
from repro.serving.http_api import create_server, start_in_background
from repro.serving.warmup import capture_snapshot, warm_up

__all__ = [
    "ClusterFixture",
    "Replica",
    "canonical_payload",
    "corpus_snapshot",
    "http_request",
    "make_replica",
]

#: Matches the suite-wide seed count so payloads line up with goldens.
NUM_SEEDS = 10

#: Hard ceiling on readiness polling; a fleet that is not up in this long
#: is broken, not slow.
READY_DEADLINE_SECONDS = 30.0


class Replica(SimpleNamespace):
    """One in-process ``serve --empty`` replica (app + HTTP server + thread)."""

    def kill(self) -> None:
        """SIGKILL-ish: close the sockets, leave the app's threads running.

        This is what a crashed process looks like to the router — connections
        refused — without the orderly corpus detach a clean shutdown does.
        """
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=5)

    def stop(self) -> None:
        """Orderly shutdown: sockets closed, then the app itself."""
        self.kill()
        self.app.close(wait=False)


def make_replica(
    *,
    graph_backend: str = "indexed",
    num_seeds: int = NUM_SEEDS,
    cache_state: str | None = None,
    max_workers: int = 2,
    queue_depth: int = 8,
) -> Replica:
    """Spawn one empty replica on an OS-assigned ephemeral port."""
    app = RePaGerApp(
        config=ServingConfig(
            port=0,
            max_workers=max_workers,
            queue_depth=queue_depth,
            query_timeout_seconds=120.0,
            cache_state_path=cache_state,
        ),
        pipeline_config=PipelineConfig(
            num_seeds=num_seeds, graph_backend=graph_backend
        ),
    )
    server = create_server(app, config=app.config)
    thread = start_in_background(server)
    return Replica(app=app, server=server, thread=thread, url=server.url)


def corpus_snapshot(corpus_dir: str, path, *, num_seeds: int = NUM_SEEDS) -> str:
    """Warm a throwaway service on ``corpus_dir`` and record its artifacts."""
    from repro.corpus.storage import CorpusStore

    service = RePaGerService(
        CorpusStore.load(corpus_dir),
        pipeline_config=PipelineConfig(num_seeds=num_seeds),
    )
    warm_up(service)
    capture_snapshot(service, path)
    return str(path)


def http_request(
    url: str,
    method: str,
    path: str,
    body: dict | None = None,
    *,
    timeout: float = 120.0,
):
    """(status, parsed JSON body, headers); taxonomy error bodies parsed too."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def canonical_payload(payload: dict) -> str:
    """Payload bytes minus the one wall-clock field (the suite-wide idiom)."""
    data = dict(payload)
    data["stats"] = {
        k: v for k, v in data["stats"].items() if k != "elapsed_seconds"
    }
    return json.dumps(data)


class ClusterFixture:
    """Context manager: N replicas behind a bootstrapped router.

    Args:
        replicas: Fleet size.
        corpora: ``name -> spec`` where spec is a :class:`CorpusSpec`, a
            ``(corpus_dir, snapshot_path)`` tuple, or a bare corpus dir.
        graph_backend: Graph core every replica runs.
        default_corpus: Corpus the legacy single-corpus routes alias onto.
        cache_state: Path to a shared sqlite result cache; every replica
            opens the same file (the ``serve --cache-state`` story).
        failure_threshold / reset_seconds / proxy_timeout / ring_seed /
            vnodes: Forwarded to :class:`RouterApp`; the defaults make
            failover deterministic inside a test (one dropped proxy downs a
            replica, no half-open retry mid-assertion).
    """

    def __init__(
        self,
        *,
        replicas: int = 3,
        corpora: dict[str, object],
        graph_backend: str = "indexed",
        default_corpus: str | None = None,
        cache_state: str | None = None,
        num_seeds: int = NUM_SEEDS,
        failure_threshold: int = 1,
        reset_seconds: float = 60.0,
        proxy_timeout: float = 120.0,
        ring_seed: int = 0,
        vnodes: int = 128,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self._num_replicas = replicas
        self._specs = {
            name: self._as_spec(name, value) for name, value in corpora.items()
        }
        self._graph_backend = graph_backend
        self._default_corpus = default_corpus
        self._cache_state = cache_state
        self._num_seeds = num_seeds
        self._router_kwargs = dict(
            failure_threshold=failure_threshold,
            reset_seconds=reset_seconds,
            proxy_timeout=proxy_timeout,
            ring_seed=ring_seed,
            vnodes=vnodes,
        )
        self.replicas: list[Replica] = []
        self.router: RouterApp | None = None
        self.server = None
        self.thread = None
        self.url: str | None = None

    @staticmethod
    def _as_spec(name: str, value: object) -> CorpusSpec:
        if isinstance(value, CorpusSpec):
            return value
        if isinstance(value, tuple):
            corpus_dir, snapshot = value
            return CorpusSpec(name, str(corpus_dir), None if snapshot is None else str(snapshot))
        return CorpusSpec(name, str(value), None)

    # -- lifecycle --------------------------------------------------------

    def __enter__(self) -> "ClusterFixture":
        try:
            self.replicas = [
                make_replica(
                    graph_backend=self._graph_backend,
                    num_seeds=self._num_seeds,
                    cache_state=self._cache_state,
                )
                for _ in range(self._num_replicas)
            ]
            self.router = RouterApp(
                [replica.url for replica in self.replicas],
                self._specs,
                default_corpus=self._default_corpus,
                **self._router_kwargs,
            )
            self.router.bootstrap()
            self.server = create_router_server(self.router)
            self.thread = start_router_in_background(self.server)
            self.url = self.server.url
            self.wait_ready()
        except BaseException:
            self.close()
            raise
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.dump_state()
        self.close()

    def wait_ready(self, deadline_seconds: float = READY_DEADLINE_SECONDS) -> None:
        """Poll every surface's ``/healthz`` until it answers 200 — no sleeps."""
        deadline = time.monotonic() + deadline_seconds
        pending = [replica.url for replica in self.replicas] + [self.url]
        while pending:
            url = pending[0]
            try:
                status, _, _ = http_request(url, "GET", "/healthz", timeout=5.0)
            except (OSError, urllib.error.URLError, json.JSONDecodeError):
                status = 0
            if status == 200:
                pending.pop(0)
                continue
            if time.monotonic() >= deadline:
                raise TimeoutError(f"{url} not ready after {deadline_seconds:g}s")
            time.sleep(0.02)

    def close(self) -> None:
        if self.server is not None:
            self.server.shutdown()
            self.server.server_close()
            self.server = None
        if self.thread is not None:
            self.thread.join(timeout=5)
            self.thread = None
        if self.router is not None:
            self.router.close()
            self.router = None
        for replica in self.replicas:
            try:
                replica.stop()
            except OSError:
                pass
        self.replicas = []

    def dump_state(self) -> None:
        """Print the router's view of the fleet to stderr (failure forensics)."""
        if self.router is None:
            return
        try:
            report = self.router.health_report()
            events = self.router.events.tail(30)
        except Exception as exc:  # the dump must never mask the real failure
            print(f"[cluster_harness] state dump failed: {exc!r}", file=sys.stderr)
            return
        print("[cluster_harness] router health at failure:", file=sys.stderr)
        print(json.dumps(report, indent=2, sort_keys=True, default=str), file=sys.stderr)
        print("[cluster_harness] last events:", file=sys.stderr)
        for record in events:
            print(f"  {record}", file=sys.stderr)

    # -- conveniences -----------------------------------------------------

    def request(self, method: str, path: str, body: dict | None = None, **kw):
        """HTTP round-trip against the router."""
        return http_request(self.url, method, path, body, **kw)

    def metrics(self) -> dict:
        """The router's ``/v1/metrics``, parsed into labelled series."""
        response = urllib.request.urlopen(self.url + "/v1/metrics", timeout=30)
        return parse_metrics_text(response.read().decode())

    def replica_for(self, corpus: str) -> Replica:
        """The live replica object currently holding ``corpus``."""
        url = self.router.placement[corpus]
        return next(replica for replica in self.replicas if replica.url == url)

    def kill(self, corpus_or_url: str) -> Replica:
        """Crash the replica holding a corpus (or at a URL); returns it."""
        if corpus_or_url.startswith("http"):
            victim = next(r for r in self.replicas if r.url == corpus_or_url)
        else:
            victim = self.replica_for(corpus_or_url)
        victim.kill()
        return victim

    def drain(self, url: str, *, timeout: float = 120.0):
        """Orderly drain via the public DELETE surface; (status, body, headers)."""
        quoted = urllib.parse.quote(url, safe="")
        return self.request("DELETE", f"/v1/replicas/{quoted}", timeout=timeout)
