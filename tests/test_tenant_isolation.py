"""Tenant isolation under concurrency: two corpora, one process, no bleed.

The multi-tenant app shares one bounded executor and one result cache across
tenants.  These tests serve two different corpora concurrently through 8
workers and assert that nothing cross-contaminates: every payload is
byte-for-byte identical (modulo wall-clock timing) to the same corpus served
alone, cache entries stay in their tenant's namespace, and metrics land in
the right tenant's registry.
"""

from __future__ import annotations

import pytest

from repro.config import CorpusConfig, PipelineConfig, ServingConfig, TenantOverrides
from repro.corpus.generator import CorpusGenerator
from repro.repager.app import QueryOptions, RePaGerApp
from repro.repager.service import RePaGerService
from repro.serving import ResultCache, warm_up, warm_up_registry

QUERIES = (
    "pretrained language models",
    "machine learning",
    "deep learning",
    "neural networks",
)

#: Second corpus from a different generator seed: same vocabulary, different
#: papers/citations, so identical queries produce different reading paths.
OTHER_CORPUS_CONFIG = CorpusConfig(
    seed=13, papers_per_topic=20, surveys_per_topic=2, citations_per_paper=10.0
)

PIPELINE = PipelineConfig(num_seeds=10)


def canonical(payload) -> dict:
    data = payload.to_dict()
    data["stats"] = {k: v for k, v in data["stats"].items() if k != "elapsed_seconds"}
    return data


@pytest.fixture(scope="module")
def other_store():
    return CorpusGenerator(OTHER_CORPUS_CONFIG).generate().store


@pytest.fixture(scope="module")
def solo_payloads(store, other_store):
    """Ground truth: each corpus served alone, sequentially, no cache."""
    truths = {}
    for name, corpus_store in (("alpha", store), ("beta", other_store)):
        service = RePaGerService(corpus_store, pipeline_config=PIPELINE)
        warm_up(service)
        truths[name] = {
            query: canonical(service.query(query, use_cache=False))
            for query in QUERIES
        }
    return truths


@pytest.fixture()
def app(store, other_store):
    app = RePaGerApp(
        config=ServingConfig(
            port=0, max_workers=8, queue_depth=16, query_timeout_seconds=120.0
        ),
        pipeline_config=PIPELINE,
    )
    app.attach_store("alpha", store, PIPELINE, default=True)
    app.attach_store("beta", other_store, PIPELINE)
    warm_up_registry(app.registry)
    yield app
    app.close(wait=False)


def test_concurrent_tenants_match_solo_serving(app, solo_payloads):
    """8 workers, both tenants interleaved: payloads match each corpus alone."""
    requests = [
        QueryOptions(query=query).to_request(corpus)
        for corpus in ("alpha", "beta")
        for query in QUERIES
    ] * 2  # 16 overlapping requests across the two tenants
    outcomes = app.executor.run_batch(requests)

    assert len(outcomes) == 16
    assert all(outcome.ok for outcome in outcomes), [o.error for o in outcomes]
    for outcome in outcomes:
        response = outcome.payload
        assert response.corpus == outcome.request.corpus
        assert canonical(response.payload) == (
            solo_payloads[outcome.request.corpus][outcome.request.text]
        )

    # The two corpora genuinely differ, so equality above is meaningful.
    for query in QUERIES:
        assert solo_payloads["alpha"][query] != solo_payloads["beta"][query]


def test_shared_cache_stays_namespaced(app, solo_payloads):
    """Identical query text on both tenants: two distinct cache entries, and
    each tenant keeps hitting its own."""
    first_alpha = app.query("machine learning", corpus="alpha")
    first_beta = app.query("machine learning", corpus="beta")
    assert first_alpha.cached is False
    assert first_beta.cached is False

    again_alpha = app.query("machine learning", corpus="alpha")
    again_beta = app.query("machine learning", corpus="beta")
    assert again_alpha.cached is True
    assert again_beta.cached is True
    assert canonical(again_alpha.payload) == solo_payloads["alpha"]["machine learning"]
    assert canonical(again_beta.payload) == solo_payloads["beta"]["machine learning"]

    namespaces = {key[0] for key in app.cache._entries}
    assert namespaces == {"alpha", "beta"}


def test_metrics_and_snapshots_are_per_tenant(app):
    """Queries against one tenant never move the other tenant's counters, and
    the tenants' graph snapshots are distinct objects."""
    alpha_metrics = app.registry.get("alpha").service.metrics
    beta_metrics = app.registry.get("beta").service.metrics
    assert alpha_metrics is not beta_metrics

    before = beta_metrics.counter("queries_total")
    app.query("deep learning", corpus="alpha")
    assert beta_metrics.counter("queries_total") == before
    assert alpha_metrics.counter("queries_total") >= 1

    alpha_builder = app.registry.get("alpha").service.pipeline.weight_builder
    beta_builder = app.registry.get("beta").service.pipeline.weight_builder
    assert alpha_builder._snapshot is not beta_builder._snapshot
    assert alpha_builder._snapshot.num_nodes != beta_builder._snapshot.num_nodes


def test_detaching_one_tenant_leaves_the_other_untouched(app, solo_payloads):
    app.query("machine learning", corpus="alpha")
    app.query("machine learning", corpus="beta")
    app.detach("beta")
    assert {key[0] for key in app.cache._entries} == {"alpha"}
    still = app.query("machine learning", corpus="alpha")
    assert still.cached is True
    assert canonical(still.payload) == solo_payloads["alpha"]["machine learning"]


class FakeClock:
    """Deterministic monotonic clock shared by one cache across tenants."""

    def __init__(self) -> None:
        self.now = 1_000.0

    def __call__(self) -> float:
        return self.now


def test_per_tenant_ttl_overrides_do_not_leak_across_namespaces(
    store, other_store, solo_payloads
):
    """One shared cache, one shared clock, two TTL policies: a tenant's TTL
    override must expire only *its* namespaced entries, never the other
    tenant's, and expired entries must re-serve the correct corpus."""
    clock = FakeClock()
    cache = ResultCache(max_entries=64, ttl_seconds=1_000.0, clock=clock)
    app = RePaGerApp(
        config=ServingConfig(port=0, max_workers=4, query_timeout_seconds=120.0),
        pipeline_config=PIPELINE,
        cache=cache,
    )
    with app:
        app.attach_store(
            "alpha", store, PIPELINE, default=True,
            overrides=TenantOverrides(cache_ttl_seconds=10.0),
        )
        app.attach_store("beta", other_store, PIPELINE)
        warm_up_registry(app.registry)

        assert app.query("machine learning", corpus="alpha").cached is False
        assert app.query("machine learning", corpus="beta").cached is False
        assert app.query("machine learning", corpus="alpha").cached is True
        assert app.query("machine learning", corpus="beta").cached is True

        # Past alpha's 10s override but well within the cache-wide 1000s TTL:
        # alpha recomputes, beta keeps hitting — with correct payloads both.
        clock.now += 50.0
        again_alpha = app.query("machine learning", corpus="alpha")
        again_beta = app.query("machine learning", corpus="beta")
        assert again_alpha.cached is False
        assert again_beta.cached is True
        assert canonical(again_alpha.payload) == solo_payloads["alpha"]["machine learning"]
        assert canonical(again_beta.payload) == solo_payloads["beta"]["machine learning"]

        # Past the cache-wide TTL both expire.
        clock.now += 1_000.0
        assert app.query("machine learning", corpus="beta").cached is False


def test_drop_namespace_called_on_detach_and_on_evict(
    store, other_store, tmp_path, monkeypatch
):
    """Both exits from residency — operator detach and lazy eviction — must
    free the tenant's namespaced cache entries."""
    app = RePaGerApp(
        config=ServingConfig(port=0, max_workers=4, query_timeout_seconds=120.0),
        pipeline_config=PIPELINE,
    )
    dropped: list[str] = []
    original = app.cache.drop_namespace
    monkeypatch.setattr(
        app.cache,
        "drop_namespace",
        lambda namespace: (dropped.append(namespace), original(namespace))[1],
    )
    with app:
        corpus_dir = tmp_path / "evictable"
        other_store.save(corpus_dir)
        app.attach_store("stays", store, PIPELINE, default=True)
        app.attach_directory("goes", str(corpus_dir), PIPELINE)

        app.query("machine learning", corpus="goes")
        assert any(key[0] == "goes" for key in app.cache._entries)
        app.evict("goes")
        assert dropped == ["goes"]
        assert not any(key[0] == "goes" for key in app.cache._entries)

        app.query("machine learning", corpus="goes")  # re-attach
        app.detach("goes")
        assert dropped == ["goes", "goes"]
        assert not any(key[0] == "goes" for key in app.cache._entries)
