"""Unit tests for the academic search-engine simulators and the SerpAPI client."""

from __future__ import annotations

import pytest

from repro.errors import EmptyQueryError, SearchError
from repro.search.academic import MicrosoftAcademicEngine
from repro.search.aminer import AMinerEngine
from repro.search.engine import RankingPolicy, SearchEngine
from repro.search.scholar import GoogleScholarEngine
from repro.search.serapi import SerApiClient


class TestSearchEngineCore:
    def test_results_are_ranked_and_limited(self, scholar_engine):
        results = scholar_engine.search("pretrained language models", top_k=10)
        assert 0 < len(results) <= 10
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)
        assert [r.rank for r in results] == list(range(len(results)))

    def test_results_match_query_topic(self, scholar_engine, store):
        results = scholar_engine.search("hate speech detection", top_k=10)
        topics = {store.get_paper(r.paper_id).topic for r in results}
        assert "hate-speech-detection" in topics

    def test_year_cutoff_respected(self, scholar_engine, store):
        results = scholar_engine.search("neural networks", top_k=20, year_cutoff=2005)
        assert all(store.get_paper(r.paper_id).year <= 2005 for r in results)

    def test_exclude_ids_respected(self, scholar_engine):
        baseline = scholar_engine.search_ids("deep learning", top_k=5)
        excluded = scholar_engine.search_ids("deep learning", top_k=5, exclude_ids=baseline[:1])
        assert baseline[0] not in excluded

    def test_empty_query_rejected(self, scholar_engine):
        with pytest.raises(EmptyQueryError):
            scholar_engine.search("   ")

    def test_invalid_top_k_rejected(self, scholar_engine):
        with pytest.raises(SearchError):
            scholar_engine.search("deep learning", top_k=0)

    def test_irrelevant_papers_never_returned(self, store):
        engine = SearchEngine(store, policy=RankingPolicy())
        results = engine.search("zzzz nonexistent gibberish", top_k=10)
        assert results == []

    def test_engines_have_distinct_rankings(self, store, venues):
        query = "machine learning"
        scholar = GoogleScholarEngine(store, venues=venues).search_ids(query, top_k=20)
        aminer = AMinerEngine(store, venues=venues).search_ids(query, top_k=20)
        academic = MicrosoftAcademicEngine(store, venues=venues).search_ids(query, top_k=20)
        assert scholar != aminer or scholar != academic

    def test_scholar_prefers_highly_cited_papers(self, store, scholar_engine):
        results = scholar_engine.search("machine learning", top_k=10)
        top_citations = [store.get_paper(r.paper_id).citation_count for r in results[:5]]
        corpus_mean = sum(p.citation_count for p in store) / len(store)
        assert sum(top_citations) / len(top_citations) > corpus_mean

    def test_aminer_prefers_recent_papers(self, store, venues):
        aminer = AMinerEngine(store, venues=venues)
        scholar = GoogleScholarEngine(store, venues=venues)
        query = "machine learning"
        aminer_years = [store.get_paper(pid).year for pid in aminer.search_ids(query, top_k=15)]
        scholar_years = [store.get_paper(pid).year for pid in scholar.search_ids(query, top_k=15)]
        assert sum(aminer_years) / len(aminer_years) >= sum(scholar_years) / len(scholar_years)


class TestSerApiClient:
    def test_results_look_like_organic_results(self, scholar_engine):
        client = SerApiClient(scholar_engine)
        results = client.search("graph neural networks", num=5)
        assert results
        first = results[0]
        assert first["position"] == 1
        assert {"paper_id", "title", "year", "score"} <= set(first)

    def test_cache_avoids_repeated_queries(self, scholar_engine):
        client = SerApiClient(scholar_engine)
        client.search("graph neural networks", num=5)
        client.search("graph neural networks", num=5)
        assert client.stats.queries_issued == 1
        assert client.stats.cache_hits == 1

    def test_quota_enforced(self, scholar_engine):
        client = SerApiClient(scholar_engine, quota=1)
        client.search("graph neural networks", num=3)
        with pytest.raises(SearchError):
            client.search("information retrieval", num=3)
        assert client.remaining_quota == 0

    def test_invalid_construction_rejected(self, scholar_engine):
        with pytest.raises(SearchError):
            SerApiClient(scholar_engine, quota=0)
        with pytest.raises(SearchError):
            SerApiClient(scholar_engine, latency_per_query=-1.0)

    def test_search_ids_match_engine_ranking(self, scholar_engine):
        client = SerApiClient(scholar_engine)
        assert client.search_ids("deep learning", num=5) == scholar_engine.search_ids(
            "deep learning", top_k=5
        )
