"""Observability subsystem tests: spans, tracer store, event log, debug mode.

Covers the :mod:`repro.obs` primitives in isolation (span nesting, ring-buffer
caps, slow-query capture, cross-thread handoff, JSONL event records) and the
end-to-end wiring through :class:`RePaGerApp`: a ``debug: true`` query must
return a span tree covering the full query path whose stage durations
reconcile with the measured pipeline time, lifecycle transitions must land in
the structured event log, and finished traces must feed the per-stage latency
histograms on ``/v1/metrics``.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.config import PipelineConfig, ServingConfig, TenantQuota
from repro.errors import TenantQuotaExceededError
from repro.obs import (
    EVENT_FIELDS,
    EVENT_TYPES,
    EventLog,
    Tracer,
    current_trace,
    handoff,
    read_event_records,
    set_enabled,
    stage,
    tracing_enabled,
)
from repro.repager.app import QueryOptions, RePaGerApp
from repro.repager.service import RePaGerService
from repro.serving.executor import BatchExecutor, QueryRequest
from repro.serving.warmup import warm_up_registry

#: The named stages a fresh (uncached) debug query must cover end to end.
EXPECTED_STAGES = {
    "quota_admission",
    "scheduler_wait",
    "queue_wait",
    "cache_lookup",
    "pipeline",
    "postings_search",
    "k_hop_expand",
    "seed_reallocation",
    "edge_relevance_slice",
    "steiner_solve",
    "metric_closure",
    "padding",
    "ranking",
    "payload_assembly",
}


@pytest.fixture(scope="module")
def app(store, scholar_engine, citation_graph, venues):
    app = RePaGerApp(
        config=ServingConfig(port=0, max_workers=2, query_timeout_seconds=120.0),
        pipeline_config=PipelineConfig(num_seeds=10),
    )
    service = RePaGerService(
        store,
        search_engine=scholar_engine,
        pipeline_config=PipelineConfig(num_seeds=10),
        venues=venues,
        graph=citation_graph,
        cache=app.cache,
    )
    app.attach_service("main", service, default=True)
    warm_up_registry(app.registry)
    yield app
    app.close(wait=False)


class TestStageSpans:
    def test_stage_without_trace_is_shared_noop(self):
        assert current_trace() is None
        first = stage("anything")
        second = stage("something_else", tag=1)
        assert first is second  # the shared singleton: no allocation when idle
        with first as span:
            assert span.tag(extra=2) is span

    def test_span_tree_nesting_and_tags(self):
        tracer = Tracer(capacity=4)
        with tracer.trace("query", corpus="t") as trace:
            with stage("outer") as outer:
                outer.tag(k=1)
                with stage("inner"):
                    pass
            with stage("sibling"):
                pass
        spans = {span.name: span for span in trace.spans()}
        assert set(spans) == {"outer", "inner", "sibling"}
        assert spans["outer"].parent_id is None
        assert spans["sibling"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].tags == {"k": 1}
        assert trace.status == "ok"
        assert trace.duration_seconds >= spans["outer"].duration_seconds

    def test_exception_tags_span_and_marks_trace_error(self):
        tracer = Tracer(capacity=4)
        with pytest.raises(ValueError):
            with tracer.trace("query") as trace:
                with stage("boom"):
                    raise ValueError("nope")
        (span,) = trace.spans()
        assert span.tags["error"] == "ValueError"
        assert trace.status == "error"
        assert trace.error == "ValueError"
        assert tracer.get(trace.trace_id) is trace

    def test_handoff_carries_trace_into_pool_thread(self):
        tracer = Tracer(capacity=4)
        pool = ThreadPoolExecutor(max_workers=1)

        def worker(ctx):
            # Pool threads never inherit the submitting context ...
            assert current_trace() is None
            with ctx:
                # ... until the captured context is explicitly entered.
                assert current_trace() is not None
                with stage("in_worker"):
                    pass
            assert current_trace() is None

        try:
            with tracer.trace("query") as trace:
                with stage("parent"):
                    pool.submit(worker, handoff()).result(timeout=10)
        finally:
            pool.shutdown()
        spans = {span.name: span for span in trace.spans()}
        assert spans["in_worker"].parent_id == spans["parent"].span_id

    def test_set_enabled_false_disables_everything(self):
        tracer = Tracer(capacity=4)
        try:
            set_enabled(False)
            assert not tracing_enabled()
            with tracer.trace("query") as trace:
                assert trace is None
                assert stage("x") is stage("y")
                assert handoff() is None
            assert len(tracer) == 0
        finally:
            set_enabled(True)
        assert tracing_enabled()


class TestTracerStore:
    def _record(self, tracer, corpus=None):
        with tracer.trace("query", corpus=corpus) as trace:
            pass
        return trace

    def test_ring_buffer_evicts_oldest_and_drops_index(self):
        tracer = Tracer(capacity=3, per_tenant_capacity=3)
        traces = [self._record(tracer) for _ in range(5)]
        assert len(tracer) == 3
        recent_ids = [t.trace_id for t in tracer.recent()]
        assert recent_ids == [t.trace_id for t in reversed(traces[-3:])]
        assert tracer.get(traces[0].trace_id) is None
        assert tracer.get(traces[-1].trace_id) is traces[-1]

    def test_per_tenant_cap_protects_quiet_tenants(self):
        tracer = Tracer(capacity=10, per_tenant_capacity=2)
        quiet = self._record(tracer, corpus="quiet")
        chatty = [self._record(tracer, corpus="chatty") for _ in range(6)]
        # The chatty tenant only ever holds its own cap ...
        assert [t.trace_id for t in tracer.recent(corpus="chatty")] == [
            t.trace_id for t in reversed(chatty[-2:])
        ]
        # ... and the quiet tenant's single trace survives the flood.
        assert [t.trace_id for t in tracer.recent(corpus="quiet")] == [quiet.trace_id]

    def test_slow_traces_survive_recent_eviction(self):
        tracer = Tracer(capacity=2, slow_threshold_seconds=0.0, slow_capacity=8)
        slow = self._record(tracer)
        assert slow.slow is True
        for _ in range(4):
            self._record(tracer)
        # Rolled out of the recent ring but retained (with full spans) as slow.
        assert slow.trace_id not in [t.trace_id for t in tracer.recent()]
        assert slow.trace_id in [t.trace_id for t in tracer.slow()]
        assert tracer.get(slow.trace_id) is slow

    def test_zero_slow_capacity_disables_slow_capture(self):
        tracer = Tracer(capacity=4, slow_threshold_seconds=0.0, slow_capacity=0)
        trace = self._record(tracer)
        assert trace.slow is False
        assert tracer.slow() == []

    def test_on_finish_hook_sees_every_trace(self):
        seen = []
        tracer = Tracer(capacity=4, on_finish=seen.append)
        trace = self._record(tracer)
        assert seen == [trace]

    def test_summary_and_detail_shapes(self):
        tracer = Tracer(capacity=4)
        with tracer.trace("query", corpus="t", request_id="req-1") as trace:
            with stage("s", k="v"):
                pass
        summary = trace.summary()
        assert summary["request_id"] == "req-1"
        assert summary["corpus"] == "t"
        assert summary["num_spans"] == 1
        assert "spans" not in summary
        detail = trace.to_dict()
        (span,) = detail["spans"]
        assert span["name"] == "s"
        assert span["tags"] == {"k": "v"}
        json.dumps(detail)  # everything must be JSON-serialisable


class TestEventLog:
    def test_seq_is_monotonic_and_records_are_complete(self):
        log = EventLog()
        first = log.emit("corpus_attach", corpus="a", papers=3)
        second = log.emit("quota_reject", reason="rate")
        assert tuple(first) == EVENT_FIELDS
        assert (first["seq"], second["seq"]) == (1, 2)
        assert second["corpus"] is None
        assert first["detail"] == {"papers": 3}
        assert log.last_seq == 2

    def test_tail_filters_and_bounds(self):
        log = EventLog(capacity=4)
        for index in range(6):
            log.emit("corpus_attach", corpus=f"c{index % 2}")
        log.emit("corpus_detach", corpus="c0")
        assert len(log) == 4  # capacity bound
        assert [e["event"] for e in log.tail(2)] == ["corpus_attach", "corpus_detach"]
        detaches = log.tail(event="corpus_detach")
        assert [e["corpus"] for e in detaches] == ["c0"]
        assert all(e["corpus"] == "c1" for e in log.tail(corpus="c1"))
        # seq keeps counting past evicted records.
        assert log.last_seq == 7

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "logs" / "events.jsonl"
        log = EventLog(path)
        log.emit("corpus_attach", corpus="a", papers=1)
        log.emit("corpus_evict", corpus="a", snapshot_path=None)
        log.close()
        records = list(read_event_records(path))
        assert [r["event"] for r in records] == ["corpus_attach", "corpus_evict"]
        assert all(tuple(r) == EVENT_FIELDS for r in records)
        assert all(r["event"] in EVENT_TYPES for r in records)

    def test_reader_skips_blank_and_corrupt_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = {"seq": 1, "ts": 0.0, "event": "corpus_attach", "corpus": None, "detail": {}}
        path.write_text(
            "\n".join(["", "not json {", json.dumps(good), '"a bare string"', '{"torn'])
            + "\n"
        )
        assert list(read_event_records(path)) == [good]

    def test_quota_reject_emitted_by_executor(self):
        log = EventLog()
        executor = BatchExecutor(
            lambda request: "ok",
            max_workers=1,
            metrics=None,
            clock=lambda: 0.0,  # frozen: the token bucket never refills
            events=log,
        )
        try:
            executor.configure_tenant("t", TenantQuota(rate_per_second=1.0, burst=1))
            executor.run_one(QueryRequest(text="q", corpus="t"))
            with pytest.raises(TenantQuotaExceededError):
                executor.submit(QueryRequest(text="q", corpus="t"))
        finally:
            executor.shutdown()
        (event,) = log.tail(event="quota_reject")
        assert event["corpus"] == "t"
        assert "rate limit" in event["detail"]["reason"]
        assert event["detail"]["retry_after_seconds"] == 1.0


class TestAppLifecycleEvents:
    def test_attach_and_detach_are_logged(self, store):
        app = RePaGerApp(
            config=ServingConfig(port=0, max_workers=1),
            pipeline_config=PipelineConfig(num_seeds=10),
        )
        try:
            app.attach_store("one", store, default=True)
            app.attach_store("two", store)
            app.detach("two")
        finally:
            app.close(wait=False)
        events = [(e["event"], e["corpus"]) for e in app.events.tail()]
        assert events == [
            ("corpus_attach", "one"),
            ("corpus_attach", "two"),
            ("corpus_detach", "two"),
        ]
        attach = app.events.tail(event="corpus_attach")[0]
        assert attach["detail"]["papers"] == len(store)
        assert attach["detail"]["default"] is True
        detach = app.events.tail(event="corpus_detach")[0]
        assert detach["detail"]["resident"] is True

    def test_evict_and_reattach_are_logged(self, store, tmp_path):
        corpus_dir = tmp_path / "corpus"
        store.save(corpus_dir)
        app = RePaGerApp(
            config=ServingConfig(port=0, max_workers=1, query_timeout_seconds=120.0),
            pipeline_config=PipelineConfig(num_seeds=10),
        )
        try:
            app.attach_directory("t", str(corpus_dir), default=True)
            app.evict("t")
            app.query("machine learning")  # transparently re-attaches
        finally:
            app.close(wait=False)
        events = [e["event"] for e in app.events.tail()]
        assert events == ["corpus_attach", "corpus_evict", "corpus_reattach"]
        evict = app.events.tail(event="corpus_evict")[0]
        assert evict["detail"]["was_default"] is True
        reattach = app.events.tail(event="corpus_reattach")[0]
        assert reattach["corpus"] == "t"


class TestDebugQueries:
    def test_request_id_echoed_without_debug(self, app):
        response = app.query(
            QueryOptions(query="graph neural networks"), request_id="client-7"
        )
        assert response.request_id == "client-7"
        meta = response.serving_meta()
        assert meta["request_id"] == "client-7"
        assert "trace" not in meta

    def test_debug_query_returns_full_span_tree(self, app):
        response = app.query(
            QueryOptions(query="reinforcement learning agents", debug=True)
        )
        trace = response.serving_meta()["trace"]
        assert trace["request_id"] == response.request_id
        names = {span["name"] for span in trace["spans"]}
        missing = EXPECTED_STAGES - names
        assert not missing, f"debug trace missing stages: {sorted(missing)}"
        assert len(names) >= 8

    def test_stage_durations_reconcile_with_pipeline_seconds(self, app):
        response = app.query(
            QueryOptions(query="convolutional image classification", debug=True)
        )
        trace = response.serving_meta()["trace"]
        spans = trace["spans"]
        by_id = {span["span_id"]: span for span in spans}
        (pipeline,) = [span for span in spans if span["name"] == "pipeline"]
        children = [
            span for span in spans if span.get("parent_id") == pipeline["span_id"]
        ]
        assert len(children) >= 6
        summed = sum(span["duration_seconds"] for span in children)
        # The instrumented stages must account for the pipeline time: no
        # double counting (children cannot exceed their parent) and no big
        # uninstrumented hole inside the pipeline.
        assert summed <= pipeline["duration_seconds"] + 1e-3
        assert summed >= 0.5 * pipeline["duration_seconds"]
        # The span reconciles with the pipeline's own elapsed-time stat.
        measured = pipeline["tags"]["pipeline_seconds"]
        assert pipeline["duration_seconds"] >= measured - 1e-6
        assert pipeline["duration_seconds"] <= measured + 0.25
        # Every parent link points inside the tree.
        for span in spans:
            parent = span.get("parent_id")
            assert parent is None or parent in by_id
        # And the whole trace bounds every span.
        assert all(
            span["start_seconds"] + span["duration_seconds"]
            <= trace["duration_seconds"] + 1e-3
            for span in spans
        )

    def test_cached_debug_query_tags_cache_hit(self, app):
        query = "transfer learning survey"
        app.query(QueryOptions(query=query))
        response = app.query(QueryOptions(query=query, debug=True))
        assert response.cached is True
        trace = response.serving_meta()["trace"]
        (lookup,) = [s for s in trace["spans"] if s["name"] == "cache_lookup"]
        assert lookup["tags"]["hit"] is True
        assert trace["tags"]["cached"] is True
        # A cache hit never enters the pipeline.
        assert "pipeline" not in {s["name"] for s in trace["spans"]}

    def test_traces_endpoint_data(self, app):
        response = app.query(QueryOptions(query="meta learning optimization"))
        summaries = app.traces(corpus="main")
        assert summaries, "tracer recorded nothing"
        newest = summaries[0]
        assert newest["request_id"] == response.request_id
        assert newest["corpus"] == "main"
        detail = app.trace_detail(newest["trace_id"])
        assert detail is not None
        assert detail["spans"]
        assert app.trace_detail("not-a-trace-id") is None
        assert app.traces(corpus="no-such-corpus") == []

    def test_stage_histograms_feed_tenant_metrics(self, app):
        app.query(QueryOptions(query="federated learning systems"))
        metrics = app.registry.get("main").service.metrics
        for name in ("stage_pipeline_seconds", "stage_cache_lookup_seconds"):
            histogram = metrics.histogram(name)
            assert histogram is not None and histogram.count >= 1
        rendered = app.metrics_text()
        assert 'repager_stage_pipeline_seconds{corpus="main",quantile="p50"}' in rendered

    def test_concurrent_debug_queries_keep_traces_separate(self, app):
        queries = ["multi task learning", "graph attention networks"]
        barrier = threading.Barrier(len(queries))

        def run(text):
            barrier.wait(timeout=30)
            return app.query(QueryOptions(query=text, debug=True))

        with ThreadPoolExecutor(max_workers=len(queries)) as pool:
            responses = list(pool.map(run, queries))
        ids = {response.serving_meta()["trace"]["trace_id"] for response in responses}
        assert len(ids) == len(queries)
        for response, text in zip(responses, queries):
            assert response.serving_meta()["trace"]["tags"]["query"] == text
