"""Unit tests for the core record types."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.types import Paper, ReadingPath, ReadingPathEdge, SearchResult, Survey, ensure_unique


class TestPaper:
    def test_round_trip_serialisation(self):
        paper = Paper(
            paper_id="P1",
            title="a survey on widgets",
            abstract="we survey widgets",
            year=2019,
            venue="ICDE",
            topic="widgets",
            outbound_citations=("P2", "P3"),
            citation_count=7,
            is_survey=True,
            fields={"foundational": False},
        )
        assert Paper.from_dict(paper.to_dict()) == paper

    def test_text_combines_title_and_abstract(self):
        paper = Paper(paper_id="P1", title="title", abstract="abstract")
        assert paper.text == "title. abstract"

    def test_text_without_abstract_is_title(self):
        assert Paper(paper_id="P1", title="only title").text == "only title"

    def test_empty_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Paper(paper_id="", title="x")

    def test_negative_citation_count_rejected(self):
        with pytest.raises(ConfigurationError):
            Paper(paper_id="P1", title="x", citation_count=-1)


class TestSurvey:
    def _survey(self) -> Survey:
        return Survey(
            paper_id="S1",
            title="a survey on widgets",
            year=2018,
            key_phrases=("widgets",),
            reference_occurrences={"P1": 3, "P2": 1, "P3": 2},
            citation_count=30,
        )

    def test_labels_are_nested(self):
        survey = self._survey()
        labels = survey.labels
        assert labels[3] <= labels[2] <= labels[1]
        assert labels[1] == frozenset({"P1", "P2", "P3"})
        assert labels[2] == frozenset({"P1", "P3"})
        assert labels[3] == frozenset({"P1"})

    def test_label_rejects_non_positive_level(self):
        with pytest.raises(ConfigurationError):
            self._survey().label(0)

    def test_score_formula(self):
        survey = self._survey()
        assert survey.score == pytest.approx(30 / (2020 - 2018 + 1))

    def test_score_never_divides_by_zero(self):
        survey = Survey(
            paper_id="S1", title="t", year=2025, key_phrases=("x",),
            reference_occurrences={"P1": 1}, citation_count=5,
        )
        assert survey.score == 5.0

    def test_query_joins_phrases(self):
        assert self._survey().query == "widgets"

    def test_round_trip_serialisation(self):
        survey = self._survey()
        assert Survey.from_dict(survey.to_dict()) == survey


class TestSearchResult:
    def test_negative_rank_rejected(self):
        with pytest.raises(ConfigurationError):
            SearchResult(paper_id="P1", rank=-1, score=0.5)


class TestReadingPath:
    def _path(self) -> ReadingPath:
        return ReadingPath(
            query="widgets",
            papers=("A", "B", "C", "D"),
            edges=(
                ReadingPathEdge("A", "B"),
                ReadingPathEdge("B", "C"),
                ReadingPathEdge("A", "C"),
            ),
            seeds=("A",),
        )

    def test_edge_to_unknown_paper_rejected(self):
        with pytest.raises(ConfigurationError):
            ReadingPath(query="q", papers=("A",), edges=(ReadingPathEdge("A", "Z"),))

    def test_roots_have_no_incoming_edges(self):
        assert self._path().roots() == ["A", "D"]

    def test_topological_order_respects_edges(self):
        order = self._path().topological_order()
        assert order.index("A") < order.index("B") < order.index("C")
        assert set(order) == {"A", "B", "C", "D"}

    def test_topological_order_includes_cycle_members(self):
        path = ReadingPath(
            query="q",
            papers=("A", "B"),
            edges=(ReadingPathEdge("A", "B"), ReadingPathEdge("B", "A")),
        )
        assert set(path.topological_order()) == {"A", "B"}

    def test_len_and_contains(self):
        path = self._path()
        assert len(path) == 4
        assert "A" in path
        assert "Z" not in path

    def test_round_trip_serialisation(self):
        path = self._path()
        restored = ReadingPath.from_dict(path.to_dict())
        assert restored.papers == path.papers
        assert restored.edges == path.edges
        assert restored.seeds == path.seeds

    def test_from_papers_has_no_edges(self):
        path = ReadingPath.from_papers("q", ["X", "Y"])
        assert path.papers == ("X", "Y")
        assert path.edges == ()


def test_ensure_unique_accepts_unique_ids():
    ensure_unique(["a", "b", "c"])


def test_ensure_unique_rejects_duplicates():
    with pytest.raises(ConfigurationError):
        ensure_unique(["a", "b", "a"])
