"""Unit tests for configuration validation."""

from __future__ import annotations

import pytest

from repro.config import (
    CorpusConfig,
    EvaluationConfig,
    NewstConfig,
    PipelineConfig,
    ServingConfig,
)
from repro.core.pipeline import VARIANT_CONFIGS, make_variant_config
from repro.errors import ConfigurationError


class TestCorpusConfig:
    def test_defaults_are_valid(self):
        config = CorpusConfig()
        assert config.papers_per_topic >= 5
        assert 0.0 <= config.survey_prerequisite_fraction <= 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"papers_per_topic": 2},
            {"surveys_per_topic": 0},
            {"start_year": 2020, "end_year": 2019},
            {"citations_per_paper": 0},
            {"prerequisite_citation_fraction": 1.5},
            {"survey_prerequisite_fraction": -0.1},
            {"noise_reference_fraction": 2.0},
            {"preferential_attachment": -0.5},
            {"survey_reference_count": 3},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CorpusConfig(**kwargs)


class TestNewstConfig:
    def test_paper_defaults(self):
        config = NewstConfig()
        assert (config.alpha, config.beta, config.gamma) == (3.0, 2.0, 5.0)
        assert (config.a, config.b) == (0.7, 0.3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0},
            {"beta": -1},
            {"gamma": 0},
            {"a": 0},
            {"b": -0.3},
            {"pagerank_damping": 1.0},
            {"pagerank_max_iterations": 0},
            {"pagerank_tolerance": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            NewstConfig(**kwargs)


class TestPipelineConfig:
    def test_paper_default_seed_count(self):
        assert PipelineConfig().num_seeds == 30

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_seeds": 0},
            {"expansion_order": 0},
            {"expansion_order": 5},
            {"cooccurrence_threshold": 0},
            {"max_expanded_nodes": 1, "num_seeds": 30},
            {"seed_strategy": "bogus"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PipelineConfig(**kwargs)

    def test_all_seed_strategies_accepted(self):
        for strategy in ("reallocated", "initial", "union", "intersection"):
            assert PipelineConfig(seed_strategy=strategy).seed_strategy == strategy


class TestFingerprints:
    def test_fingerprint_is_stable(self):
        assert PipelineConfig().fingerprint() == PipelineConfig().fingerprint()
        assert NewstConfig().fingerprint() == NewstConfig().fingerprint()

    def test_fingerprint_format(self):
        fingerprint = PipelineConfig().fingerprint()
        assert len(fingerprint) == 16
        assert all(c in "0123456789abcdef" for c in fingerprint)

    def test_any_field_change_alters_fingerprint(self):
        base = PipelineConfig().fingerprint()
        assert PipelineConfig(num_seeds=31).fingerprint() != base
        assert PipelineConfig(use_node_weights=False).fingerprint() != base

    def test_nested_newst_change_alters_fingerprint(self):
        base = PipelineConfig().fingerprint()
        assert PipelineConfig(newst=NewstConfig(alpha=4.0)).fingerprint() != base

    def test_all_table3_variants_have_distinct_fingerprints(self):
        fingerprints = {
            name: make_variant_config(name).fingerprint() for name in VARIANT_CONFIGS
        }
        assert len(set(fingerprints.values())) == len(VARIANT_CONFIGS)

    def test_serving_config_fingerprint_changes_with_fields(self):
        assert ServingConfig().fingerprint() != ServingConfig(port=9999).fingerprint()


class TestServingConfig:
    def test_defaults_are_valid(self):
        config = ServingConfig()
        assert config.max_workers >= 1
        assert config.cache_ttl_seconds > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"host": ""},
            {"port": -1},
            {"port": 70000},
            {"max_workers": 0},
            {"queue_depth": -1},
            {"cache_max_entries": 0},
            {"cache_ttl_seconds": 0.0},
            {"query_timeout_seconds": 0.0},
            {"max_latency_samples": 4},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServingConfig(**kwargs)


class TestEvaluationConfig:
    def test_defaults_cover_paper_k_range(self):
        config = EvaluationConfig()
        assert min(config.k_values) == 20
        assert max(config.k_values) == 50
        assert config.occurrence_levels == (1, 2, 3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k_values": ()},
            {"k_values": (0,)},
            {"occurrence_levels": (0,)},
            {"max_surveys": 0},
            {"min_references": -1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            EvaluationConfig(**kwargs)
