"""Unit tests for the text-processing substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.textproc.embeddings import EmbeddingMatcher, HashedEmbedder
from repro.textproc.keyphrase import TopicRankExtractor, extract_key_phrases
from repro.textproc.similarity import cosine_similarity, jaccard_similarity
from repro.textproc.stopwords import is_stopword
from repro.textproc.tfidf import TfidfVectorizer
from repro.textproc.tokenizer import ngrams, sentences, tokenize


class TestTokenizer:
    def test_lowercases_and_strips_punctuation(self):
        assert tokenize("Hate-Speech Detection!") == ["hate-speech", "detection"]

    def test_removes_stopwords(self):
        assert tokenize("a survey of the widgets") == ["survey", "widgets"]

    def test_title_noise_removal_is_optional(self):
        with_noise = tokenize("a survey on widgets", include_title_noise=True)
        assert "survey" not in with_noise
        assert "widgets" in with_noise

    def test_min_length_filter(self):
        assert tokenize("x is a b word", min_length=3) == ["word"]

    def test_ngrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]
        assert ngrams(["a"], 2) == []
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    def test_sentences_split_on_punctuation(self):
        assert list(sentences("First one. Second one! Third")) == [
            "First one", "Second one", "Third",
        ]

    def test_stopword_lookup(self):
        assert is_stopword("The")
        assert not is_stopword("survey")
        assert is_stopword("survey", include_title_noise=True)


class TestTfidf:
    def _fitted(self) -> TfidfVectorizer:
        corpus = [
            "hate speech detection on social media",
            "neural machine translation with attention",
            "graph neural networks for citation analysis",
            "hate speech classification with embeddings",
        ]
        return TfidfVectorizer().fit(corpus)

    def test_transform_before_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            TfidfVectorizer().transform("text")

    def test_fit_on_empty_corpus_rejected(self):
        with pytest.raises(ConfigurationError):
            TfidfVectorizer().fit([])

    def test_vectors_are_normalised(self):
        vectorizer = self._fitted()
        vector = vectorizer.transform("hate speech detection")
        norm = sum(value ** 2 for value in vector.values()) ** 0.5
        assert norm == pytest.approx(1.0)

    def test_relevant_document_ranks_first(self):
        vectorizer = self._fitted()
        documents = [
            ("doc1", "hate speech detection on social media"),
            ("doc2", "graph neural networks for citation analysis"),
        ]
        ranked = vectorizer.rank("hate speech", documents)
        assert ranked[0][0] == "doc1"
        assert ranked[0][1] > ranked[1][1]

    def test_similarity_is_symmetric(self):
        vectorizer = self._fitted()
        a = "hate speech detection"
        b = "speech detection on media"
        assert vectorizer.similarity(a, b) == pytest.approx(vectorizer.similarity(b, a))

    def test_unseen_terms_are_ignored(self):
        vectorizer = self._fitted()
        assert vectorizer.transform("completely unrelated zebra") == {}


class TestKeyphraseExtraction:
    def test_paper_running_example(self):
        phrases = extract_key_phrases(
            "A survey on hate speech detection using natural language processing"
        )
        joined = " | ".join(phrases)
        assert "hate speech detection" in joined
        assert "natural language processing" in joined
        assert all("survey" not in phrase for phrase in phrases)

    def test_single_topic_title(self):
        phrases = extract_key_phrases("A survey of pretrained language models")
        assert phrases[0] == "pretrained language models"

    def test_empty_title_returns_nothing(self):
        assert extract_key_phrases("a survey of the") == []

    def test_max_phrases_respected(self):
        extractor = TopicRankExtractor(max_phrases=1)
        phrases = extractor.extract(
            "hate speech detection using natural language processing and deep learning"
        )
        assert len(phrases) == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            TopicRankExtractor(max_phrases=0)
        with pytest.raises(ConfigurationError):
            TopicRankExtractor(clustering_threshold=0.0)

    def test_deterministic(self):
        title = "graph neural networks for recommender systems"
        assert extract_key_phrases(title) == extract_key_phrases(title)


class TestEmbeddings:
    def test_embeddings_are_unit_norm_and_deterministic(self):
        embedder = HashedEmbedder(dimensions=64, lsa_components=0)
        first = embedder.embed("attention is all you need")
        second = embedder.embed("attention is all you need")
        assert np.allclose(first, second)
        assert np.linalg.norm(first) == pytest.approx(1.0)

    def test_related_texts_more_similar_than_unrelated(self):
        embedder = HashedEmbedder(dimensions=128, lsa_components=0)
        related = embedder.similarity(
            "hate speech detection on twitter", "detecting hate speech in social media"
        )
        unrelated = embedder.similarity(
            "hate speech detection on twitter", "quantum error correction codes"
        )
        assert related > unrelated

    def test_lsa_projection_reduces_dimensionality(self):
        embedder = HashedEmbedder(dimensions=64, lsa_components=8)
        documents = [
            "hate speech detection", "graph neural networks", "query optimization",
            "neural machine translation", "reinforcement learning agents",
            "operating system scheduling", "wireless sensor networks",
            "program synthesis from examples", "knowledge graph embeddings",
            "speech recognition acoustic models",
        ]
        embedder.fit(documents)
        assert embedder.embed("hate speech").shape == (8,)
        assert embedder.output_dimensions == 8

    def test_lsa_fit_requires_documents(self):
        with pytest.raises(ConfigurationError):
            HashedEmbedder(dimensions=32, lsa_components=4).fit(["only one"])

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            HashedEmbedder(dimensions=4)
        with pytest.raises(ConfigurationError):
            HashedEmbedder(dimensions=32, lsa_components=64)


class TestEmbeddingMatcher:
    def test_training_separates_positive_and_negative(self):
        matcher = EmbeddingMatcher(HashedEmbedder(dimensions=64, lsa_components=0), epochs=120)
        examples = [
            ("hate speech detection", "a lexicon approach for hate speech detection", "", 1),
            ("hate speech detection", "detecting hate speech in social media", "", 1),
            ("hate speech detection", "cache coherence protocols for multicores", "", 0),
            ("hate speech detection", "quantum error correction with surface codes", "", 0),
        ]
        matcher.train(examples)
        assert matcher.is_trained
        positive = matcher.score("hate speech detection", "hate speech detection on facebook")
        negative = matcher.score("hate speech detection", "solid state drive wear leveling")
        assert positive > negative

    def test_rank_orders_by_score(self):
        matcher = EmbeddingMatcher(HashedEmbedder(dimensions=64, lsa_components=0))
        ranked = matcher.rank(
            "graph neural networks",
            [
                ("p1", "graph neural networks for molecules", ""),
                ("p2", "operating system scheduling", ""),
            ],
        )
        assert ranked[0][0] == "p1"

    def test_training_requires_examples(self):
        with pytest.raises(ConfigurationError):
            EmbeddingMatcher().train([])


class TestSimilarityHelpers:
    def test_cosine_similarity_bounds(self):
        assert cosine_similarity([1, 0], [1, 0]) == pytest.approx(1.0)
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)
        assert cosine_similarity([0, 0], [1, 1]) == 0.0

    def test_cosine_similarity_shape_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity([1, 2], [1, 2, 3])

    def test_jaccard_similarity(self):
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)
        assert jaccard_similarity(set(), set()) == 1.0
