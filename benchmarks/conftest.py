"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper on a
shared synthetic corpus.  The corpus here is larger than the unit-test corpus
(80 papers per topic) so that the search engines cannot trivially cover a
survey's reference list and the paper's qualitative shape emerges; it is still
small enough that the full harness runs in a few minutes.

Absolute numbers differ from the paper (the substrate is synthetic); the
benchmark assertions therefore check the *shape* of each result — who wins,
how curves move with K, the direction of each ablation — and the printed
tables let a human compare against the paper side by side.
"""

from __future__ import annotations

import pytest

from bench_utils import (  # noqa: F401 - re-exported for benchmarks
    BENCH_K_VALUES,
    BENCH_PAPERS_PER_TOPIC,
    BENCH_SURVEYS,
)

from repro.config import CorpusConfig, EvaluationConfig
from repro.core.pipeline import RePaGerPipeline
from repro.corpus.generator import CorpusGenerator
from repro.dataset.surveybank import SurveyBank
from repro.graph.citation_graph import CitationGraph
from repro.search.academic import MicrosoftAcademicEngine
from repro.search.aminer import AMinerEngine
from repro.search.scholar import GoogleScholarEngine
from repro.venues.rankings import build_default_catalog

#: Corpus used by every benchmark (larger than the unit-test corpus; the size
#: is overridable via REPRO_BENCH_PAPERS_PER_TOPIC for CI smoke runs).
BENCH_CORPUS_CONFIG = CorpusConfig(
    seed=7, papers_per_topic=BENCH_PAPERS_PER_TOPIC, surveys_per_topic=2
)


@pytest.fixture(scope="session")
def bench_venues():
    return build_default_catalog()


@pytest.fixture(scope="session")
def bench_corpus():
    return CorpusGenerator(BENCH_CORPUS_CONFIG).generate()


@pytest.fixture(scope="session")
def bench_store(bench_corpus):
    return bench_corpus.store


@pytest.fixture(scope="session")
def bench_taxonomy(bench_corpus):
    return bench_corpus.taxonomy


@pytest.fixture(scope="session")
def bench_graph(bench_store):
    return CitationGraph.from_papers(bench_store.papers)


@pytest.fixture(scope="session")
def bench_bank(bench_store, bench_venues) -> SurveyBank:
    return SurveyBank.from_corpus(bench_store, venues=bench_venues).filter(min_references=20)


@pytest.fixture(scope="session")
def bench_scholar(bench_store, bench_venues):
    return GoogleScholarEngine(bench_store, venues=bench_venues)


@pytest.fixture(scope="session")
def bench_msacademic(bench_store, bench_venues):
    return MicrosoftAcademicEngine(bench_store, venues=bench_venues)


@pytest.fixture(scope="session")
def bench_aminer(bench_store, bench_venues):
    return AMinerEngine(bench_store, venues=bench_venues)


@pytest.fixture(scope="session")
def bench_pipeline(bench_store, bench_scholar, bench_graph):
    return RePaGerPipeline(bench_store, bench_scholar, graph=bench_graph)


@pytest.fixture(scope="session")
def bench_eval_config() -> EvaluationConfig:
    return EvaluationConfig(k_values=BENCH_K_VALUES, max_surveys=BENCH_SURVEYS)
