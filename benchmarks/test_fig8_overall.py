"""Experiment E4 — Fig. 8: overall comparison of NEWST against all baselines.

F1@K and precision@K for K = 20..50 against the occurrence ≥1/2/3 ground-truth
levels, for: NEWST, Google Scholar, Microsoft Academic, AMiner, PageRank
re-ranking and the (offline) SciBERT-style matcher.

Paper shape to reproduce: NEWST outperforms every baseline on F1 (especially
for larger K), the search engines sit in the middle, and PageRank is by far
the worst method because it ignores query relevance.
"""

from __future__ import annotations

import pytest

from repro.baselines.pagerank_rerank import PageRankBaseline
from repro.baselines.scibert_matcher import SciBertMatcherBaseline
from repro.baselines.search_topk import SearchTopKBaseline
from repro.eval.evaluator import OverlapEvaluator, PipelineMethodAdapter

from bench_utils import BENCH_K_VALUES, print_table


@pytest.fixture(scope="module")
def fig8_scores(bench_bank, bench_eval_config, bench_pipeline, bench_scholar,
                bench_msacademic, bench_aminer, bench_graph, bench_store):
    evaluator = OverlapEvaluator(bench_bank, bench_eval_config)
    scibert = SciBertMatcherBaseline(bench_scholar, bench_graph, bench_store)
    scibert.train(bench_store.surveys[:30])
    methods = [
        PipelineMethodAdapter(bench_pipeline, "NEWST"),
        SearchTopKBaseline(bench_scholar, "Google"),
        SearchTopKBaseline(bench_msacademic, "Microsoft"),
        SearchTopKBaseline(bench_aminer, "AMiner"),
        PageRankBaseline(bench_scholar, bench_graph),
        scibert,
    ]
    return evaluator.evaluate_all(methods)


def test_fig8_f1_and_precision(benchmark, fig8_scores):
    scores = benchmark.pedantic(lambda: fig8_scores, rounds=1, iterations=1)

    for level in (1, 2, 3):
        for metric in ("f1", "precision"):
            rows = []
            for name, method_scores in scores.items():
                values = [getattr(method_scores, metric)(level, k) for k in BENCH_K_VALUES]
                rows.append([name, *values])
            print_table(
                f"Fig. 8: {metric} for top-K papers (#occurrences >= {level})",
                ["method", *[f"K={k}" for k in BENCH_K_VALUES]],
                rows,
            )

    newst = scores["NEWST"]
    google = scores["Google"]
    pagerank = scores["pagerank"]

    # NEWST outperforms every baseline on F1 at moderate-to-large K.
    for k in (30, 40, 50):
        for name, method_scores in scores.items():
            if name == "NEWST":
                continue
            assert newst.f1(1, k) >= method_scores.f1(1, k) - 1e-9, (name, k)

    # The gap versus the raw search engine is clear at K = 50 (the paper's
    # "substantial margin" for large K).
    assert newst.f1(1, 50) > google.f1(1, 50)

    # PageRank is by far the worst method (it ignores query relevance).
    for k in BENCH_K_VALUES:
        assert pagerank.f1(1, k) < 0.5 * newst.f1(1, k)

    # NEWST's precision stays comparatively stable as K grows: the relative
    # drop from K=20 to K=50 must not exceed the search engine's drop by much.
    newst_drop = newst.precision(1, 20) - newst.precision(1, 50)
    google_drop = google.precision(1, 20) - google.precision(1, 50)
    assert newst_drop <= google_drop + 0.05
