"""Scheduler-layer benchmarks: coalescing stampede absorption and fairness.

The serving layer's scheduler makes two promises that are cheap to state and
worth measuring:

* **coalescing** — N identical concurrent queries cost *one* solve.  A
  thundering herd of duplicates (the front page links to the same reading
  path) must not multiply pipeline work N times while the first solve is
  still in flight.
* **weighted fairness** — a quiet tenant's request waits one scheduling
  round behind a flooding tenant's backlog, not behind the whole backlog as
  the pre-DRR FIFO did.

Both benchmarks use a synthetic handler with a fixed simulated solve cost so
they measure the scheduler, not the pipeline; thresholds are deliberately
loose multiples so the assertions survive noisy CI machines.
"""

from __future__ import annotations

import threading
import time

from bench_utils import env_float, env_int, print_table

from repro.serving import BatchExecutor, MetricsRegistry, QueryRequest

#: Simulated pipeline solve cost, seconds.
SOLVE_SECONDS = env_float("REPRO_BENCH_SOLVE_SECONDS", 0.02)

#: Size of the duplicate-query herd.
HERD_SIZE = env_int("REPRO_BENCH_HERD", 32)

#: Depth of the flooding tenant's backlog in the fairness benchmark.
FLOOD_BACKLOG = env_int("REPRO_BENCH_FLOOD_BACKLOG", 40)


def _herd(executor, text, size):
    """Fire ``size`` identical queries concurrently; return (seconds, errors)."""
    errors = []
    barrier = threading.Barrier(size)

    def worker():
        barrier.wait(timeout=30)
        try:
            executor.run_one(QueryRequest(text=text, corpus="bench"))
        except Exception as error:  # pragma: no cover - surfaced via assert
            errors.append(error)

    threads = [threading.Thread(target=worker) for _ in range(size)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    return time.perf_counter() - started, errors


def test_coalescing_absorbs_duplicate_stampede():
    solves = []

    def handler(request):
        solves.append(request.text)
        time.sleep(SOLVE_SECONDS)
        return {"query": request.text}

    key_for = lambda request: (request.corpus, request.text)  # noqa: E731

    with BatchExecutor(handler, max_workers=4, queue_depth=HERD_SIZE) as plain:
        plain_seconds, errors = _herd(plain, "stampede", HERD_SIZE)
        assert not errors
        plain_solves = len(solves)

    solves.clear()
    metrics = MetricsRegistry()
    with BatchExecutor(
        handler, max_workers=4, queue_depth=HERD_SIZE, metrics=metrics,
        key_for=key_for,
    ) as coalescing:
        coalesced_seconds, errors = _herd(coalescing, "stampede", HERD_SIZE)
        assert not errors
        coalesced_solves = len(solves)

    speedup = plain_seconds / max(coalesced_seconds, 1e-9)
    print_table(
        f"Scheduler: {HERD_SIZE} identical concurrent queries "
        f"({SOLVE_SECONDS * 1000:.0f}ms simulated solve)",
        ["executor", "solves", "seconds", "speedup"],
        [
            ["FIFO, no coalescing", plain_solves, plain_seconds, 1.0],
            ["coalescing", coalesced_solves, coalesced_seconds, speedup],
        ],
    )

    assert plain_solves == HERD_SIZE  # every duplicate paid for its own solve
    # The herd may straggle: late arrivals after the leader resolved start a
    # fresh solve.  The point is collapse by an order of magnitude, not to 1.
    assert coalesced_solves <= max(2, HERD_SIZE // 8)
    assert metrics.counter("executor_coalesced_total") >= HERD_SIZE - coalesced_solves
    # (HERD_SIZE/4 workers) sequential rounds collapse to ~one solve: demand
    # at least a quarter of the ideal HERD/4 speedup to absorb timer noise.
    assert speedup >= HERD_SIZE / 16, f"coalescing speedup only {speedup:.1f}x"


def test_drr_bounds_quiet_tenant_wait_under_flood():
    def handler(request):
        time.sleep(SOLVE_SECONDS)
        return "ok"

    metrics = MetricsRegistry()
    with BatchExecutor(
        handler, max_workers=4, queue_depth=FLOOD_BACKLOG + 8, metrics=metrics
    ) as executor:
        executor.configure_tenant("flood", weight=1)
        executor.configure_tenant("quiet", weight=1)

        flood_started = time.perf_counter()
        flood_futures = [
            executor.submit(QueryRequest(text=f"flood {i}", corpus="flood"))
            for i in range(FLOOD_BACKLOG)
        ]
        quiet_started = time.perf_counter()
        executor.run_one(QueryRequest(text="quiet", corpus="quiet"))
        quiet_seconds = time.perf_counter() - quiet_started
        for future in flood_futures:
            future.result(timeout=60)
        drain_seconds = time.perf_counter() - flood_started

    print_table(
        f"Scheduler: quiet-tenant latency behind a {FLOOD_BACKLOG}-deep flood "
        "(4 workers)",
        ["metric", "seconds"],
        [
            ["flood backlog full drain", drain_seconds],
            ["quiet request latency", quiet_seconds],
            ["FIFO would have been ~drain", drain_seconds],
        ],
    )

    # DRR dispatches the quiet request on the next round (~2 solve slots of
    # wait); FIFO would have parked it behind the whole backlog.  Half the
    # drain time is an extremely loose bound that still rules FIFO out.
    assert quiet_seconds < drain_seconds / 2, (
        f"quiet tenant waited {quiet_seconds:.3f}s of a {drain_seconds:.3f}s "
        "drain — starvation is back"
    )
