"""Experiment E8 — Table V: human evaluation of Google Scholar vs RePaGer.

The paper asks 16 graduate students to compare the two systems on 20 queries
from two domains along three criteria (prerequisite, relevance, completeness).
This benchmark reproduces the protocol with the simulated annotator panel:
system A is the Google-Scholar top-K list, system B is the NEWST reading path.

Shape to reproduce: B is overwhelmingly preferred on *prerequisite* (the paper
reports 93%/77% with 0% preferring A), the two systems are roughly comparable
on *relevance*, and B is moderately preferred on *completeness*.
"""

from __future__ import annotations

import pytest

from repro.eval.human import run_human_evaluation
from repro.types import ReadingPath

from bench_utils import print_table

QUERIES_PER_DOMAIN = 6
ANNOTATORS_PER_DOMAIN = 8
DOMAINS = (
    ("Artificial Intelligence", "AI"),
    ("Database, Data Mining, Information Retrieval", "DM"),
)


def _build_cases(bank, domain, scholar, pipeline):
    instances = [i for i in bank if i.domain == domain][:QUERIES_PER_DOMAIN]
    if len(instances) < 2:
        # Venue-based domain assignment leaves many surveys "Uncertain"; fall
        # back to any instances so the benchmark always has material.
        instances = list(bank)[:QUERIES_PER_DOMAIN]
    cases = []
    for instance in instances:
        flat = ReadingPath.from_papers(
            instance.query,
            scholar.search_ids(instance.query, top_k=30, year_cutoff=instance.year,
                               exclude_ids=[instance.survey_id]),
        )
        structured = pipeline.generate(
            instance.query, year_cutoff=instance.year, exclude_ids=(instance.survey_id,)
        ).reading_path
        cases.append((instance, flat, structured))
    return cases


@pytest.fixture(scope="module")
def human_eval_results(bench_bank, bench_scholar, bench_pipeline, bench_graph):
    results = {}
    for domain, short in DOMAINS:
        cases = _build_cases(bench_bank, domain, bench_scholar, bench_pipeline)
        results[short] = run_human_evaluation(
            short, cases, bench_graph, num_annotators=ANNOTATORS_PER_DOMAIN
        )
    return results


def test_table5_human_evaluation(benchmark, human_eval_results):
    results = benchmark.pedantic(lambda: human_eval_results, rounds=1, iterations=1)

    rows = []
    for short, result in results.items():
        for criterion in ("prerequisite", "relevance", "completeness"):
            prefer_a, same, prefer_b = result.row(criterion)
            rows.append([short, criterion, prefer_a, same, prefer_b])
    print_table(
        "Table V: human evaluation (A = Google Scholar, B = NEWST/RePaGer)",
        ["Domain", "Criterion", "Prefer A (%)", "Same (%)", "Prefer B (%)"],
        rows,
    )

    for result in results.values():
        prefer_a, same, prefer_b = result.row("prerequisite")
        # The flat list has no reading-order structure at all, so B dominates.
        assert prefer_b > 60.0
        assert prefer_a < 15.0

        prefer_a_rel, same_rel, prefer_b_rel = result.row("relevance")
        # Relevance is roughly comparable: neither system wins overwhelmingly.
        assert prefer_a_rel < 85.0 and prefer_b_rel < 85.0

        prefer_a_com, _, prefer_b_com = result.row("completeness")
        # NEWST covers at least as much of the domain knowledge as the raw list.
        assert prefer_b_com >= prefer_a_com - 10.0

        # Percentages are consistent.
        for criterion in ("prerequisite", "relevance", "completeness"):
            assert sum(result.row(criterion)) == pytest.approx(100.0)
