"""Serving-layer throughput: cache speedup and concurrent batch execution.

Table IV makes per-query runtime a first-class result; the serving layer's
job is to beat it for repeated and concurrent traffic.  This benchmark
measures, on the shared benchmark corpus:

* **cache speedup** — a repeated identical query must be served from the
  LRU+TTL cache at least 10× faster than the first (cold) execution;
* **batch throughput** — 8 overlapping queries through the thread-pool
  executor complete correctly and report queries/second plus latency
  percentiles from the metrics registry.
"""

from __future__ import annotations

import time

import pytest

from bench_utils import print_table

from repro.config import PipelineConfig
from repro.repager.service import RePaGerService
from repro.serving import (
    BatchExecutor,
    MetricsRegistry,
    QueryRequest,
    ResultCache,
    warm_up,
)

#: Speedup a cache hit must achieve over the cold pipeline run.
MIN_CACHE_SPEEDUP = 10.0

BENCH_QUERIES = (
    "pretrained language models",
    "machine learning",
    "deep learning",
    "neural networks",
)


@pytest.fixture(scope="module")
def serving_service(bench_store, bench_scholar, bench_graph, bench_venues):
    service = RePaGerService(
        bench_store,
        search_engine=bench_scholar,
        pipeline_config=PipelineConfig(num_seeds=20),
        venues=bench_venues,
        graph=bench_graph,
        cache=ResultCache(max_entries=128, ttl_seconds=600.0),
        metrics=MetricsRegistry(),
    )
    report = warm_up(service)
    print(
        f"\nwarm-up: {report.graph_nodes} nodes / {report.graph_edges} edges "
        f"in {report.elapsed_seconds:.3f}s"
    )
    return service


def _canonical(payload) -> dict:
    data = payload.to_dict()
    data["stats"] = {k: v for k, v in data["stats"].items() if k != "elapsed_seconds"}
    return data


def test_cache_speedup(serving_service):
    query = "pretrained language models"

    started = time.perf_counter()
    cold = serving_service.query(query)
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm = serving_service.query(query)
    warm_seconds = time.perf_counter() - started

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    print_table(
        "Serving: repeated-query cache speedup",
        ["path", "seconds", "speedup"],
        [
            ["cold (full pipeline)", cold_seconds, 1.0],
            ["warm (cache hit)", warm_seconds, speedup],
        ],
    )

    assert warm is cold  # the cached payload object itself is returned
    assert serving_service.cache.stats().hits >= 1
    # Acceptance criterion: a repeated identical query is served from cache
    # at least 10x faster than the first execution.
    assert speedup >= MIN_CACHE_SPEEDUP, (
        f"cache hit only {speedup:.1f}x faster ({warm_seconds:.6f}s vs "
        f"{cold_seconds:.6f}s)"
    )


def test_concurrent_batch_throughput(serving_service):
    requests = [QueryRequest(query, use_cache=False) for query in BENCH_QUERIES * 2]

    sequential_started = time.perf_counter()
    expected = {
        query: _canonical(serving_service.query(query, use_cache=False))
        for query in BENCH_QUERIES
    }
    sequential_seconds = time.perf_counter() - sequential_started

    with BatchExecutor.from_service(
        serving_service,
        max_workers=8,
        queue_depth=8,
        timeout_seconds=300.0,
        metrics=serving_service.metrics,
    ) as executor:
        batch_started = time.perf_counter()
        outcomes = executor.run_batch(requests)
        batch_seconds = time.perf_counter() - batch_started

    assert all(outcome.ok for outcome in outcomes), [o.error for o in outcomes]
    for outcome in outcomes:
        assert _canonical(outcome.payload) == expected[outcome.request.text]

    throughput = len(requests) / max(batch_seconds, 1e-9)
    latency = serving_service.metrics.histogram("pipeline_seconds")
    summary = latency.summary() if latency is not None else {}
    print_table(
        "Serving: concurrent batch execution (8 workers)",
        ["metric", "value"],
        [
            ["sequential (4 distinct queries), seconds", sequential_seconds],
            ["batch (8 overlapping queries), seconds", batch_seconds],
            ["batch throughput, queries/second", throughput],
            ["pipeline latency p50, seconds", summary.get("p50", 0.0)],
            ["pipeline latency p95, seconds", summary.get("p95", 0.0)],
            ["pipeline latency p99, seconds", summary.get("p99", 0.0)],
        ],
    )

    assert serving_service.metrics.gauge("in_flight") == 0.0
    assert serving_service.metrics.counter("executor_completed_total") >= len(requests)
