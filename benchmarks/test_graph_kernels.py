"""Graph-kernel latency: dict-of-dicts backend vs the indexed CSR backend.

The NEWST hot path (Algorithm 1) is dominated by the metric closure — one
node+edge weighted Dijkstra per terminal.  The indexed backend
(:mod:`repro.graph.indexed` / :mod:`repro.graph.kernels`) snapshots the graph
into flat arrays once per corpus and prefetches both cost functions, so the
inner relaxation loop performs no attribute-dict lookups and no Python
closure calls.  This benchmark measures, on a ~1k-node synthetic corpus:

* **metric closure** — the per-query closure cost as the serving layer pays
  it (snapshot amortised across queries, costs bound per query); acceptance:
  the indexed backend is at least ``MIN_CLOSURE_SPEEDUP``× faster *and*
  returns identical distances and paths;
* **end-to-end pipeline** — ``RePaGerPipeline.generate`` latency per backend
  with identical reading-path output;
* **PageRank** — the per-corpus warm-up pass, bit-identical scores.

Every measurement is written to ``benchmarks/BENCH_graph_kernels.json`` so
runs can be compared across commits.  Thresholds and sizes honour
``REPRO_BENCH_*`` environment variables (see the CI ``bench-smoke`` job).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from bench_utils import env_float, env_int, print_table

from repro.config import CorpusConfig, PipelineConfig
from repro.core.pipeline import RePaGerPipeline
from repro.core.weights import WeightedGraphBuilder
from repro.corpus.generator import CorpusGenerator
from repro.graph.citation_graph import CitationGraph
from repro.graph.indexed import IndexedGraph
from repro.graph.kernels import indexed_metric_closure, indexed_pagerank
from repro.graph.pagerank import pagerank
from repro.graph.steiner import metric_closure
from repro.search.scholar import GoogleScholarEngine

#: Acceptance criterion: minimum metric-closure speedup of the indexed backend.
MIN_CLOSURE_SPEEDUP = env_float("REPRO_BENCH_MIN_SPEEDUP", 3.0)

#: End-to-end pipeline runs must not regress (informally they improve ~1.2-2x;
#: the floor guards against the indexed path ever becoming a pessimisation).
MIN_PIPELINE_SPEEDUP = env_float("REPRO_BENCH_MIN_E2E_SPEEDUP", 1.0)

#: ~1k nodes with the default taxonomy (99 topics x (papers + 1 survey)).
KERNEL_PAPERS_PER_TOPIC = env_int("REPRO_BENCH_KERNEL_PAPERS_PER_TOPIC", 10)

NUM_TERMINALS = 30
PIPELINE_QUERIES = ("information retrieval", "image processing", "machine learning")

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_graph_kernels.json"


def best_of(fn, repeats: int = 3) -> float:
    """Best-of-N wall-clock seconds for ``fn()`` (min damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="module")
def kernel_env():
    """Corpus, graph, cost functions and terminals for the kernel benchmarks."""
    config = CorpusConfig(
        seed=11, papers_per_topic=KERNEL_PAPERS_PER_TOPIC, surveys_per_topic=1
    )
    corpus = CorpusGenerator(config).generate()
    store = corpus.store
    graph = CitationGraph.from_papers(store.papers)
    engine = GoogleScholarEngine(store)
    terminals = [
        s for s in engine.search_ids("information retrieval", top_k=NUM_TERMINALS)
        if s in graph
    ]
    builder = WeightedGraphBuilder(store, graph)
    node_cost = builder.node_weights().as_cost_function()
    edge_cost = builder.edge_costs().as_cost_function()
    return {
        "store": store,
        "graph": graph,
        "engine": engine,
        "terminals": terminals,
        "node_cost": node_cost,
        "edge_cost": edge_cost,
    }


@pytest.fixture(scope="module")
def bench_results():
    """Collected measurements, flushed to BENCH_graph_kernels.json at teardown."""
    results: dict[str, object] = {}
    yield results
    RESULTS_PATH.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\nwrote {RESULTS_PATH.name}")


def test_metric_closure_speedup(kernel_env, bench_results):
    graph = kernel_env["graph"]
    terminals = kernel_env["terminals"]
    edge_cost = kernel_env["edge_cost"]
    node_cost = kernel_env["node_cost"]

    dict_seconds = best_of(
        lambda: metric_closure(graph, terminals, edge_cost, node_cost)
    )

    # The serving layer builds the snapshot once per corpus (warm-up) and pays
    # cost binding + the array search per query.
    snapshot_seconds = best_of(lambda: IndexedGraph.from_graph(graph), repeats=1)
    snapshot = IndexedGraph.from_graph(graph)
    indexed_seconds = best_of(
        lambda: indexed_metric_closure(
            snapshot, snapshot.bind_costs(edge_cost, node_cost), terminals
        )
    )

    expected = metric_closure(graph, terminals, edge_cost, node_cost)
    actual = metric_closure(graph, terminals, edge_cost, node_cost, snapshot=snapshot)
    assert actual == expected, "indexed metric closure diverged from dict backend"

    speedup = dict_seconds / max(indexed_seconds, 1e-9)
    print_table(
        f"Graph kernels: metric closure ({graph.num_nodes} nodes, "
        f"{graph.num_edges} edges, {len(terminals)} terminals)",
        ["backend", "seconds", "speedup"],
        [
            ["dict (heap Dijkstra per terminal)", dict_seconds, 1.0],
            ["indexed (bind costs + array kernels)", indexed_seconds, speedup],
            ["indexed one-off snapshot build", snapshot_seconds, ""],
        ],
    )
    bench_results["metric_closure"] = {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "terminals": len(terminals),
        "dict_seconds": dict_seconds,
        "indexed_seconds": indexed_seconds,
        "snapshot_build_seconds": snapshot_seconds,
        "speedup": speedup,
        "min_speedup": MIN_CLOSURE_SPEEDUP,
    }

    assert speedup >= MIN_CLOSURE_SPEEDUP, (
        f"indexed metric closure only {speedup:.2f}x faster "
        f"({indexed_seconds:.4f}s vs {dict_seconds:.4f}s); need "
        f">= {MIN_CLOSURE_SPEEDUP:.1f}x"
    )


def test_end_to_end_pipeline_speedup(kernel_env, bench_results):
    store = kernel_env["store"]
    graph = kernel_env["graph"]
    engine = kernel_env["engine"]

    timings: dict[str, float] = {}
    outputs: dict[str, list] = {}
    for backend in ("dict", "indexed"):
        pipeline = RePaGerPipeline(
            store, engine, graph=graph,
            config=PipelineConfig(graph_backend=backend),
        )
        pipeline.node_weights  # warm-up: PageRank is a per-corpus, not per-query, cost
        if backend == "indexed":
            pipeline.indexed_graph

        last_run: list = []

        def run_queries(pipeline=pipeline, last_run=last_run):
            last_run[:] = [pipeline.generate(query) for query in PIPELINE_QUERIES]

        timings[backend] = best_of(run_queries, repeats=2)
        outputs[backend] = [
            (result.reading_path.papers, result.reading_path.edges)
            for result in last_run
        ]

    assert outputs["indexed"] == outputs["dict"], (
        "backends produced different reading paths"
    )

    speedup = timings["dict"] / max(timings["indexed"], 1e-9)
    print_table(
        f"Graph kernels: end-to-end pipeline ({len(PIPELINE_QUERIES)} queries)",
        ["backend", "seconds", "speedup"],
        [
            ["dict", timings["dict"], 1.0],
            ["indexed", timings["indexed"], speedup],
        ],
    )
    bench_results["pipeline_end_to_end"] = {
        "queries": list(PIPELINE_QUERIES),
        "dict_seconds": timings["dict"],
        "indexed_seconds": timings["indexed"],
        "speedup": speedup,
        "min_speedup": MIN_PIPELINE_SPEEDUP,
    }

    assert speedup >= MIN_PIPELINE_SPEEDUP, (
        f"indexed pipeline is slower than dict ({speedup:.2f}x)"
    )


def test_pagerank_speedup_and_bit_identity(kernel_env, bench_results):
    graph = kernel_env["graph"]
    snapshot = IndexedGraph.from_graph(graph)

    dict_seconds = best_of(lambda: pagerank(graph))
    indexed_seconds = best_of(lambda: indexed_pagerank(snapshot))

    expected = pagerank(graph)
    actual = indexed_pagerank(snapshot)
    assert actual == expected, "indexed PageRank is not bit-identical"

    speedup = dict_seconds / max(indexed_seconds, 1e-9)
    print_table(
        "Graph kernels: PageRank (per-corpus warm-up pass)",
        ["backend", "seconds", "speedup"],
        [
            ["dict", dict_seconds, 1.0],
            ["indexed", indexed_seconds, speedup],
        ],
    )
    bench_results["pagerank"] = {
        "dict_seconds": dict_seconds,
        "indexed_seconds": indexed_seconds,
        "speedup": speedup,
    }
    # Informational: PageRank gains are modest (the scatter loop dominates in
    # both backends); the assertion only guards against a pessimisation.
    assert speedup >= 0.8
