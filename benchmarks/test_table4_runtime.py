"""Experiment E7 — Table IV: running time of the RePaGer pipeline.

For several retrieval cases the paper reports the size of the constructed
sub-citation graph (#nodes, #edges) and the end-to-end running time, plus the
average over the test set (≈1 minute on the authors' 6-million-paper graph).

On the synthetic corpus the absolute times are much smaller; the shape to
reproduce is that the running time grows with the sub-graph size and that the
pipeline comfortably finishes within an interactive budget.
"""

from __future__ import annotations

from repro.eval.timing import measure_runtime

from bench_utils import print_table

NUM_CASES = 6
TIME_BUDGET_SECONDS = 60.0


def test_table4_runtime(benchmark, bench_pipeline, bench_bank):
    instances = list(bench_bank)[:NUM_CASES]

    cases, average = benchmark.pedantic(
        measure_runtime, args=(bench_pipeline, instances), rounds=1, iterations=1
    )

    rows = [
        [f"Case {index + 1} ({case.query[:30]})", case.num_nodes, case.num_edges, case.seconds]
        for index, case in enumerate(cases)
    ]
    rows.append(["Avg. (test set)", average.num_nodes, average.num_edges, average.seconds])
    print_table("Table IV: running time under different retrieval cases",
                ["case", "#nodes", "#edges", "time (seconds)"], rows)

    assert len(cases) >= NUM_CASES - 2
    # Every case finishes well inside the interactive budget the paper reports.
    assert all(case.seconds < TIME_BUDGET_SECONDS for case in cases)
    # Larger sub-graphs do not come for free: the slowest case must not be the
    # smallest one (weak monotonicity check that mirrors the table's trend).
    slowest = max(cases, key=lambda case: case.seconds)
    smallest = min(cases, key=lambda case: case.num_nodes)
    assert slowest.num_nodes >= smallest.num_nodes
    # The average row aggregates the individual cases.
    assert min(c.seconds for c in cases) <= average.seconds <= max(c.seconds for c in cases)
