"""Experiment E2 — Fig. 4: SurveyBank statistics.

Regenerates the three distributions of Fig. 4 — survey citation counts (4a),
publication years (4b) and reference-list sizes (4c) — plus the headline
Sec. III-C numbers (≈58 references per survey on average, ~17.8% of surveys
never cited, ~5.3% cited more than 500 times, ~87.8% published in the last 20
years).
"""

from __future__ import annotations

from repro.dataset.statistics import compute_statistics

from bench_utils import print_mapping, print_table


def test_fig4_surveybank_statistics(benchmark, bench_bank):
    stats = benchmark.pedantic(compute_statistics, args=(bench_bank,), rounds=1, iterations=1)

    print_mapping("Fig. 4a: survey citation-count distribution", stats.citation_histogram)
    print_mapping("Fig. 4b: survey publication-year distribution", stats.year_histogram)
    print_mapping("Fig. 4c: survey reference-count distribution", stats.reference_histogram)
    print_table(
        "Sec. III-C headline statistics (paper: 58 refs avg, 17.8% uncited, "
        "5.3% cited > 500, 87.8% published in last 20 years)",
        ["statistic", "value"],
        [
            ["surveys", stats.num_surveys],
            ["mean references", stats.mean_references],
            ["fraction uncited", stats.fraction_uncited],
            ["fraction cited > 500", stats.fraction_highly_cited],
            ["fraction recent (20y)", stats.fraction_recent],
        ],
    )

    # Shape assertions mirroring the paper's description of the dataset.
    assert stats.num_surveys > 50
    assert 30 <= stats.mean_references <= 90
    assert 0.05 <= stats.fraction_uncited <= 0.4
    assert stats.fraction_highly_cited <= 0.3
    assert stats.fraction_recent >= 0.7
    # The year distribution must be dominated by recent bins (Fig. 4b).
    years = stats.year_histogram
    assert years["2015-2020"] + years["2010-2015"] >= 0.6 * stats.num_surveys
    # Reference counts concentrate in the first two bins (Fig. 4c).
    references = stats.reference_histogram
    assert references["0-50"] + references["50-100"] >= 0.9 * stats.num_surveys
