"""Experiment E9 — Fig. 9: the reading path for "pretrained language models".

The paper shows the generated reading path for the query "Pretrained Language
Model": a tree whose arrows give the reading order, where several prerequisite
papers (attention, contextualised word representations, ...) do not appear in
the Google-Scholar TOP-30 for the same query (green nodes in the figure).

The benchmark regenerates the path on the synthetic corpus, prints it as an
ASCII tree, and asserts the figure's qualitative claims: the path is a tree,
the reading order follows citation/publication time, and it contains
prerequisite-topic papers that the TOP-30 search results miss.
"""

from __future__ import annotations

from repro.repager.render import render_ascii_tree, render_flat_list

from bench_utils import print_table

QUERY = "pretrained language models"
PREREQUISITE_TOPICS = {
    "attention-mechanism",
    "contextual-embeddings",
    "word-embeddings",
    "transfer-learning",
    "language-modeling",
    "sequence-to-sequence",
    "natural-language-processing",
}


def test_fig9_reading_path(benchmark, bench_pipeline, bench_scholar, bench_store):
    result = benchmark.pedantic(bench_pipeline.generate, args=(QUERY,), rounds=1, iterations=1)
    path = result.reading_path

    print()
    print(render_ascii_tree(path, bench_store, max_depth=8))
    print()
    print(render_flat_list(path, bench_store, limit=15))

    top30 = set(bench_scholar.search_ids(QUERY, top_k=30))
    tree_nodes = set(result.tree.nodes)
    outside_search = tree_nodes - top30
    prerequisite_nodes = {
        pid for pid in tree_nodes
        if pid in bench_store and bench_store.get_paper(pid).topic in PREREQUISITE_TOPICS
    }

    print_table(
        "Fig. 9 summary",
        ["quantity", "value"],
        [
            ["tree papers", len(tree_nodes)],
            ["reading-order edges", len(path.edges)],
            ["papers not in TOP-30 search results", len(outside_search)],
            ["papers from prerequisite topics", len(prerequisite_nodes)],
        ],
    )

    # The output is a proper tree with a usable reading order.
    assert result.tree.is_tree()
    assert len(path.edges) == len(tree_nodes) - 1

    # Reading order: for every edge the source is read first, and whenever the
    # two papers are directly linked by a citation, the cited (earlier) paper
    # comes first.
    for edge in path.edges:
        source_year = bench_store.get_paper(edge.source).year
        target_year = bench_store.get_paper(edge.target).year
        assert source_year <= target_year + 1  # citations are time-respecting

    # The figure's key point: the path contains prerequisite papers that the
    # search engine's TOP-30 does not contain.
    assert outside_search, "the path must add papers beyond the search results"
    assert prerequisite_nodes, "the path must include prerequisite-topic papers"
    assert prerequisite_nodes & outside_search, (
        "at least one prerequisite paper must be absent from the TOP-30 results"
    )
