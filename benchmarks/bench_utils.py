"""Helpers shared by the benchmark modules (table printing and sizing constants).

Sizing constants honour ``REPRO_BENCH_*`` environment variables so CI can run
the whole harness as a fast smoke test (small corpus, few surveys) without a
separate code path — see the ``bench-smoke`` job in
``.github/workflows/ci.yml``.
"""

from __future__ import annotations

import os
from typing import Mapping, Sequence


def env_int(name: str, default: int) -> int:
    """An integer sizing knob from the environment (``REPRO_BENCH_*``)."""
    return int(os.environ.get(name, default))


def env_float(name: str, default: float) -> float:
    """A float threshold knob from the environment (``REPRO_BENCH_*``)."""
    return float(os.environ.get(name, default))


#: Number of benchmark surveys evaluated per method (keeps the harness fast
#: while averaging over enough queries to be stable).
BENCH_SURVEYS = env_int("REPRO_BENCH_SURVEYS", 12)

#: Papers per topic of the shared benchmark corpus.
BENCH_PAPERS_PER_TOPIC = env_int("REPRO_BENCH_PAPERS_PER_TOPIC", 80)

#: K values reported by the Fig. 8 benchmark (the paper uses 20..50).
BENCH_K_VALUES = (20, 25, 30, 35, 40, 45, 50)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print a small aligned table under a title (the regenerated paper table)."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header)), *(len(_fmt(row[index])) for row in rows)) if rows else len(str(header))
        for index, header in enumerate(headers)
    ]
    print("  ".join(str(header).ljust(width) for header, width in zip(headers, widths)))
    for row in rows:
        print("  ".join(_fmt(value).ljust(width) for value, width in zip(row, widths)))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def print_mapping(title: str, mapping: Mapping[object, object]) -> None:
    """Print a flat mapping as two columns."""
    print_table(title, ["key", "value"], [[key, value] for key, value in mapping.items()])
