"""Experiment E1 — Fig. 2: seed-neighbourhood overlap with survey reference lists.

For the TOP-30 and TOP-50 Google-Scholar results of each benchmark survey, the
benchmark measures which fraction of the survey's reference list (at occurrence
levels ≥1, ≥2, ≥3) is covered by the results themselves (0th order), by their
first-order citation neighbours and by their second-order neighbours.

Paper shape to reproduce: the 0th-order overlap is small, and it grows sharply
at the 1st and again at the 2nd order (e.g. 0.06 → 0.36 → 0.62 for TOP-30 at
occurrence ≥ 1 in the paper).
"""

from __future__ import annotations

from repro.eval.evaluator import neighborhood_overlap_study

from bench_utils import BENCH_SURVEYS, print_table


def _run_study(bank, engine, graph, top_k):
    return neighborhood_overlap_study(
        bank, engine, graph, top_k=top_k, orders=(0, 1, 2),
        occurrence_levels=(1, 2, 3), max_surveys=BENCH_SURVEYS,
    )


def test_fig2_overlap_ratios(benchmark, bench_bank, bench_scholar, bench_graph):
    """Regenerate both panels of Fig. 2 (TOP-30 and TOP-50)."""
    top30 = benchmark.pedantic(
        _run_study, args=(bench_bank, bench_scholar, bench_graph, 30), rounds=1, iterations=1
    )
    top50 = _run_study(bench_bank, bench_scholar, bench_graph, 50)

    for label, ratios in (("TOP 30", top30), ("TOP 50", top50)):
        rows = [
            [f"occurrences >= {level}",
             ratios[0][level], ratios[1][level], ratios[2][level]]
            for level in (1, 2, 3)
        ]
        print_table(
            f"Fig. 2 ({label}): overlap ratio of seed neighbourhoods with reference lists",
            ["ground truth", "0 order", "1st order", "2nd order"],
            rows,
        )

    # Shape assertions: coverage grows with neighbourhood order at every level,
    # and the 2nd-order neighbourhood recovers most of the reference list.
    for ratios in (top30, top50):
        for level in (1, 2, 3):
            assert ratios[0][level] <= ratios[1][level] <= ratios[2][level]
        assert ratios[2][1] > ratios[0][1] + 0.2
        assert ratios[2][1] > 0.8

    # TOP-50 seeds cover at least as much as TOP-30 seeds at order 0.
    assert top50[0][1] >= top30[0][1] - 0.02
