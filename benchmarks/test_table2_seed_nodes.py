"""Experiment E5 — Table II: impact of the number of seed nodes on NEWST.

The paper varies the number of initial Google-Scholar seeds from 10 to 50 and
reports F1 and precision (at the default occurrence ≥ 1 level).  Shape to
reproduce: F1 rises steadily as more seeds are used (more ground-truth papers
become reachable after expansion), while precision saturates and eventually
degrades when too many seeds inject noise.
"""

from __future__ import annotations

import dataclasses

from repro.config import EvaluationConfig, PipelineConfig
from repro.core.pipeline import RePaGerPipeline
from repro.eval.evaluator import OverlapEvaluator, PipelineMethodAdapter

from bench_utils import BENCH_SURVEYS, print_table

SEED_COUNTS = (10, 15, 20, 25, 30, 40, 50)
EVAL_K = 30


def _evaluate_seed_count(num_seeds, bench_store, bench_scholar, bench_graph, bench_bank):
    config = PipelineConfig(num_seeds=num_seeds)
    pipeline = RePaGerPipeline(bench_store, bench_scholar, graph=bench_graph, config=config)
    evaluator = OverlapEvaluator(
        bench_bank,
        EvaluationConfig(k_values=(EVAL_K,), occurrence_levels=(1,), max_surveys=BENCH_SURVEYS),
    )
    return evaluator.evaluate(PipelineMethodAdapter(pipeline, f"NEWST-{num_seeds}seeds"))


def test_table2_seed_node_sensitivity(benchmark, bench_store, bench_scholar, bench_graph,
                                      bench_bank):
    results = {}

    def run_all():
        for num_seeds in SEED_COUNTS:
            results[num_seeds] = _evaluate_seed_count(
                num_seeds, bench_store, bench_scholar, bench_graph, bench_bank
            )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    f1_row = ["F1 score", *[results[n].f1(1, EVAL_K) for n in SEED_COUNTS]]
    precision_row = ["Precision", *[results[n].precision(1, EVAL_K) for n in SEED_COUNTS]]
    print_table(
        "Table II: impact of the number of seed nodes on NEWST",
        ["metric", *[f"{n} seeds" for n in SEED_COUNTS]],
        [f1_row, precision_row],
    )

    f1_values = {n: results[n].f1(1, EVAL_K) for n in SEED_COUNTS}
    precision_values = {n: results[n].precision(1, EVAL_K) for n in SEED_COUNTS}

    # The model is robust to the seed count: F1 stays in a narrow band across
    # the whole 10..50 range (the paper reports 0.19..0.24).  Note that the
    # paper's *steadily rising* F1 is not reproduced here: a synthetic topic
    # holds ~10^2 papers rather than S2ORC's ~10^6, so 10-15 seeds already
    # cover a topic and additional seeds mostly add noise (see EXPERIMENTS.md).
    assert min(f1_values.values()) >= 0.6 * max(f1_values.values())

    # Overloading the seed count hurts precision (paper: precision peaks around
    # 30-40 seeds and drops at 50) — the degradation direction is reproduced.
    assert precision_values[50] < precision_values[10]
    peak = max(precision_values[n] for n in (25, 30, 40))
    assert precision_values[50] <= peak + 0.02
