"""Experiment E3 — Table I: topic distribution of the SurveyBank surveys.

Each survey is assigned to a CCF domain according to the venue it was
published at; surveys at venues outside the catalogue fall into the
"Uncertain Topics" bucket, exactly as in the paper.  The paper's shape:
Artificial Intelligence is the largest identified domain and a large share of
surveys remain in "Uncertain Topics".
"""

from __future__ import annotations

from repro.dataset.statistics import topic_distribution
from repro.dataset.surveybank import UNCERTAIN_DOMAIN

from bench_utils import print_table


def test_table1_topic_distribution(benchmark, bench_bank):
    distribution = benchmark.pedantic(topic_distribution, args=(bench_bank,),
                                      rounds=1, iterations=1)
    total = sum(distribution.values())
    rows = sorted(
        ([domain, count, f"{100.0 * count / total:.1f}%"] for domain, count in distribution.items()),
        key=lambda row: -row[1],
    )
    rows.append(["Total", total, "100%"])
    print_table("Table I: topic distribution of the survey papers", ["Domain", "#Papers", "share"],
                rows)

    # Shape assertions.
    assert total == len(bench_bank)
    identified = {d: c for d, c in distribution.items() if d != UNCERTAIN_DOMAIN}
    assert identified, "at least some surveys must map to a CCF domain"
    largest_identified = max(identified, key=identified.get)
    assert largest_identified == "Artificial Intelligence"
    # A non-trivial share of surveys has no catalogued venue (paper: 64.2%).
    assert distribution.get(UNCERTAIN_DOMAIN, 0) > 0
    # Every domain with surveys appears, and AI outnumbers the small domains
    # such as HCI and CS theory (the paper's ordering).
    small_domains = [
        "Human-Computer Interaction and Pervasive Computing",
        "Computer Science Theory",
    ]
    for domain in small_domains:
        assert identified.get("Artificial Intelligence", 0) >= identified.get(domain, 0)
