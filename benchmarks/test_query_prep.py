"""Query-preparation latency: dict reference path vs the indexed fast path.

PR 2 moved the NEWST Steiner solve onto the CSR snapshot, which shifted the
per-query bottleneck to everything *before* the solve:

* **search scoring** — the dict reference dots the query vector against every
  stored paper per query; the indexed path scores only papers sharing a term
  with the query through a per-corpus
  :class:`~repro.textproc.postings.PostingsIndex`;
* **expansion + edge costs** — the dict reference walks the dict graph
  breadth-first and re-intersects predecessor sets per edge per query; the
  indexed path BFSes the CSR snapshot and slices a per-corpus edge-relevance
  map;
* **end-to-end pipeline** — the whole of the above plus the (already indexed)
  Steiner solve, per backend, with byte-identical reading paths.

Each measurement is written to ``benchmarks/BENCH_query_prep.json`` so runs
can be compared across commits.  Thresholds and sizes honour
``REPRO_BENCH_*`` environment variables (see the CI ``bench-smoke`` job).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from bench_utils import env_float, env_int, print_table

from repro.config import CorpusConfig, PipelineConfig
from repro.core.pipeline import RePaGerPipeline
from repro.core.subgraph import SubgraphBuilder
from repro.core.weights import WeightedGraphBuilder
from repro.corpus.generator import CorpusGenerator
from repro.graph.citation_graph import CitationGraph
from repro.graph.indexed import IndexedGraph
from repro.search.scholar import GoogleScholarEngine

#: Acceptance criteria: minimum speedups of the indexed query-preparation path.
MIN_SEARCH_SPEEDUP = env_float("REPRO_BENCH_MIN_SEARCH_SPEEDUP", 3.0)
MIN_PREP_SPEEDUP = env_float("REPRO_BENCH_MIN_PREP_SPEEDUP", 2.0)
MIN_E2E_SPEEDUP = env_float("REPRO_BENCH_MIN_QP_E2E_SPEEDUP", 1.3)

#: ~1k nodes with the default taxonomy (99 topics x (papers + 1 survey)).
QP_PAPERS_PER_TOPIC = env_int("REPRO_BENCH_KERNEL_PAPERS_PER_TOPIC", 10)

SEARCH_QUERIES = (
    "information retrieval",
    "image processing",
    "machine learning",
    "hate speech detection",
    "neural networks",
)
PIPELINE_QUERIES = ("information retrieval", "image processing", "machine learning")

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_query_prep.json"


def best_of(fn, repeats: int = 3) -> float:
    """Best-of-N wall-clock seconds for ``fn()`` (min damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="module")
def qp_env():
    """Corpus, graph and per-backend engines for the query-prep benchmarks."""
    config = CorpusConfig(
        seed=11, papers_per_topic=QP_PAPERS_PER_TOPIC, surveys_per_topic=1
    )
    corpus = CorpusGenerator(config).generate()
    store = corpus.store
    graph = CitationGraph.from_papers(store.papers)
    engines = {
        backend: GoogleScholarEngine(store, backend=backend)
        for backend in ("dict", "indexed")
    }
    # Warm the per-corpus artifacts so the timings below measure per-query
    # work, the way a warmed serving replica pays it.
    engines["indexed"].ensure_index()
    for query in SEARCH_QUERIES:
        engines["dict"].search(query, top_k=1)  # fills the document-vector cache
    return {"store": store, "graph": graph, "engines": engines}


@pytest.fixture(scope="module")
def bench_results():
    """Collected measurements, flushed to BENCH_query_prep.json at teardown."""
    results: dict[str, object] = {}
    yield results
    RESULTS_PATH.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\nwrote {RESULTS_PATH.name}")


def test_search_scoring_speedup(qp_env, bench_results):
    engines = qp_env["engines"]
    store = qp_env["store"]

    def run(backend):
        return [engines[backend].search(query, top_k=30) for query in SEARCH_QUERIES]

    assert run("indexed") == run("dict"), "postings path diverged from corpus scan"

    dict_seconds = best_of(lambda: run("dict"))
    indexed_seconds = best_of(lambda: run("indexed"))
    index_build_seconds = best_of(
        lambda: GoogleScholarEngine(store, backend="indexed").ensure_index(), repeats=1
    )

    speedup = dict_seconds / max(indexed_seconds, 1e-9)
    print_table(
        f"Query prep: search scoring ({len(store)} papers, "
        f"{len(SEARCH_QUERIES)} queries)",
        ["backend", "seconds", "speedup"],
        [
            ["dict (score every paper)", dict_seconds, 1.0],
            ["indexed (postings index)", indexed_seconds, speedup],
            ["indexed one-off index build", index_build_seconds, ""],
        ],
    )
    bench_results["search_scoring"] = {
        "papers": len(store),
        "queries": list(SEARCH_QUERIES),
        "dict_seconds": dict_seconds,
        "indexed_seconds": indexed_seconds,
        "index_build_seconds": index_build_seconds,
        "speedup": speedup,
        "min_speedup": MIN_SEARCH_SPEEDUP,
    }
    assert speedup >= MIN_SEARCH_SPEEDUP, (
        f"postings search only {speedup:.2f}x faster "
        f"({indexed_seconds:.4f}s vs {dict_seconds:.4f}s); need "
        f">= {MIN_SEARCH_SPEEDUP:.1f}x"
    )


def test_expansion_and_edge_costs_speedup(qp_env, bench_results):
    store = qp_env["store"]
    graph = qp_env["graph"]
    seeds = qp_env["engines"]["indexed"].search_ids("information retrieval", top_k=30)

    snapshot = IndexedGraph.from_graph(graph)
    builders = {
        backend: WeightedGraphBuilder(store, graph, graph_backend=backend)
        for backend in ("dict", "indexed")
    }
    expanders = {
        "dict": SubgraphBuilder(graph, expansion_order=2, max_nodes=4000),
        "indexed": SubgraphBuilder(
            graph, expansion_order=2, max_nodes=4000, snapshot=snapshot
        ),
    }
    # Per-corpus warm-up (amortised across queries, measured separately).
    relevance_build_seconds = best_of(
        lambda: builders["indexed"].edge_relevance(), repeats=1
    )

    def run(backend):
        candidates = expanders[backend].expand(seeds)
        return candidates, builders[backend].edge_costs(set(candidates))

    dict_candidates, dict_costs = run("dict")
    indexed_candidates, indexed_costs = run("indexed")
    assert indexed_candidates == dict_candidates, "expansion diverged"
    assert indexed_costs.relevance == dict_costs.relevance, "edge relevance diverged"

    dict_seconds = best_of(lambda: run("dict"))
    indexed_seconds = best_of(lambda: run("indexed"))

    speedup = dict_seconds / max(indexed_seconds, 1e-9)
    print_table(
        f"Query prep: expansion + edge costs ({graph.num_nodes} nodes, "
        f"{graph.num_edges} edges, {len(dict_candidates)} candidates)",
        ["backend", "seconds", "speedup"],
        [
            ["dict (BFS + per-edge intersections)", dict_seconds, 1.0],
            ["indexed (CSR BFS + relevance slice)", indexed_seconds, speedup],
            ["indexed one-off relevance build", relevance_build_seconds, ""],
        ],
    )
    bench_results["expansion_edge_costs"] = {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "candidates": len(dict_candidates),
        "dict_seconds": dict_seconds,
        "indexed_seconds": indexed_seconds,
        "relevance_build_seconds": relevance_build_seconds,
        "speedup": speedup,
        "min_speedup": MIN_PREP_SPEEDUP,
    }
    assert speedup >= MIN_PREP_SPEEDUP, (
        f"indexed expansion+edge-costs only {speedup:.2f}x faster "
        f"({indexed_seconds:.4f}s vs {dict_seconds:.4f}s); need "
        f">= {MIN_PREP_SPEEDUP:.1f}x"
    )


def test_end_to_end_pipeline_speedup(qp_env, bench_results):
    store = qp_env["store"]
    graph = qp_env["graph"]
    engines = qp_env["engines"]

    timings: dict[str, float] = {}
    outputs: dict[str, list] = {}
    for backend in ("dict", "indexed"):
        pipeline = RePaGerPipeline(
            store, engines[backend], graph=graph,
            config=PipelineConfig(graph_backend=backend),
        )
        # Per-corpus warm-up: PageRank, and on the indexed backend the CSR
        # snapshot + edge-relevance map (the engines are warmed in qp_env).
        pipeline.node_weights
        if backend == "indexed":
            pipeline.indexed_graph
            pipeline.weight_builder.edge_relevance()

        last_run: list = []

        def run_queries(pipeline=pipeline, last_run=last_run):
            # A fresh per-candidate-set cache per run: time the cold path, not
            # the bound-cost reuse.
            pipeline._prepared_cache.clear()
            last_run[:] = [pipeline.generate(query) for query in PIPELINE_QUERIES]

        timings[backend] = best_of(run_queries, repeats=2)
        outputs[backend] = [
            (result.reading_path.papers, result.reading_path.edges)
            for result in last_run
        ]

    assert outputs["indexed"] == outputs["dict"], (
        "backends produced different reading paths"
    )

    speedup = timings["dict"] / max(timings["indexed"], 1e-9)
    print_table(
        f"Query prep: end-to-end pipeline ({len(PIPELINE_QUERIES)} queries)",
        ["backend", "seconds", "speedup"],
        [
            ["dict", timings["dict"], 1.0],
            ["indexed", timings["indexed"], speedup],
        ],
    )
    bench_results["pipeline_end_to_end"] = {
        "queries": list(PIPELINE_QUERIES),
        "dict_seconds": timings["dict"],
        "indexed_seconds": timings["indexed"],
        "speedup": speedup,
        "min_speedup": MIN_E2E_SPEEDUP,
    }
    assert speedup >= MIN_E2E_SPEEDUP, (
        f"indexed pipeline only {speedup:.2f}x faster than dict; need "
        f">= {MIN_E2E_SPEEDUP:.1f}x"
    )
