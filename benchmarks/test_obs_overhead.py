"""Tracing overhead on the uninstrumented path must stay under 5%.

The observability spans (:func:`repro.obs.stage`) are compiled into the
pipeline unconditionally; when no trace is active they reduce to a single
``ContextVar`` read returning a shared no-op handle.  This benchmark holds
that bargain to account:

* **end-to-end** — interleaved rounds of uncached queries with tracing
  globally enabled (but no active trace — the plain ``service.query`` path)
  versus globally disabled via :func:`repro.obs.set_enabled`.  The best-of-N
  round times must agree within 5% (plus a small absolute epsilon for timer
  noise).
* **micro** — the cost of one idle ``stage()`` enter/exit, multiplied by the
  span count of a real query, must itself be under 5% of the measured query
  time, which pins the overhead bound to the instrumentation rather than to
  run-to-run luck.
"""

from __future__ import annotations

import time

import pytest

from bench_utils import env_float, env_int, print_table

from repro.config import PipelineConfig
from repro.obs import set_enabled, stage, tracing_enabled
from repro.repager.service import RePaGerService
from repro.serving import warm_up

#: Maximum tolerated slowdown of the enabled-but-untraced path (fractional).
MAX_OVERHEAD = env_float("REPRO_BENCH_OBS_OVERHEAD", 0.05)

#: Absolute epsilon (seconds) so near-zero round times do not amplify noise.
OVERHEAD_EPSILON_SECONDS = 0.005

#: Interleaved measurement rounds per mode.
ROUNDS = env_int("REPRO_BENCH_OBS_ROUNDS", 5)

#: Idle stage() enter/exits in the micro measurement.
MICRO_ITERATIONS = env_int("REPRO_BENCH_OBS_MICRO_ITERATIONS", 50_000)

BENCH_QUERIES = ("pretrained language models", "machine learning")

#: Spans a fresh query opens end to end (pipeline stages + serving spans);
#: keep a margin above the instrumented count (~13) so the micro bound stays
#: honest if more stages are added.
SPANS_PER_QUERY = 20


@pytest.fixture(scope="module")
def obs_service(bench_store, bench_scholar, bench_graph, bench_venues):
    service = RePaGerService(
        bench_store,
        search_engine=bench_scholar,
        pipeline_config=PipelineConfig(num_seeds=20),
        venues=bench_venues,
        graph=bench_graph,
    )
    warm_up(service)
    return service


def _round_seconds(service) -> float:
    started = time.perf_counter()
    for query in BENCH_QUERIES:
        service.query(query, use_cache=False)
    return time.perf_counter() - started


def test_idle_tracing_overhead_is_under_five_percent(obs_service):
    enabled_rounds: list[float] = []
    disabled_rounds: list[float] = []
    assert tracing_enabled()
    try:
        obs_service.query(BENCH_QUERIES[0], use_cache=False)  # warm the artifacts
        # Interleave the two modes, alternating which goes first each round,
        # so drift (cache warmth, frequency scaling) lands on both sides
        # equally.
        for index in range(ROUNDS):
            order = (False, True) if index % 2 == 0 else (True, False)
            for enabled in order:
                set_enabled(enabled)
                bucket = enabled_rounds if enabled else disabled_rounds
                bucket.append(_round_seconds(obs_service))
    finally:
        set_enabled(True)

    # Best-of-N: scheduler/GC spikes only ever add time, so the minima are
    # the cleanest estimate of each mode's true cost.
    best_enabled = min(enabled_rounds)
    best_disabled = min(disabled_rounds)
    overhead = best_enabled / best_disabled - 1.0

    # Micro bound: one idle stage() is a ContextVar read + shared no-op.
    started = time.perf_counter()
    for _ in range(MICRO_ITERATIONS):
        with stage("bench_idle"):
            pass
    per_span = (time.perf_counter() - started) / MICRO_ITERATIONS
    micro_per_query = per_span * SPANS_PER_QUERY
    micro_fraction = micro_per_query / (best_enabled / len(BENCH_QUERIES))

    print_table(
        "Observability: idle tracing overhead",
        ["measure", "value"],
        [
            ["best round, tracing disabled (s)", best_disabled],
            ["best round, tracing enabled (s)", best_enabled],
            ["end-to-end overhead", overhead],
            ["idle stage() enter/exit (us)", per_span * 1e6],
            ["micro bound per query (s)", micro_per_query],
            ["micro bound / query time", micro_fraction],
        ],
    )

    # Acceptance criterion: instrumentation on the uninstrumented (untraced)
    # path costs < 5%.
    assert best_enabled <= best_disabled * (1.0 + MAX_OVERHEAD) + (
        OVERHEAD_EPSILON_SECONDS
    ), (
        f"idle tracing overhead {overhead:+.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"({best_enabled:.4f}s vs {best_disabled:.4f}s)"
    )
    assert micro_fraction < MAX_OVERHEAD, (
        f"per-span micro cost implies {micro_fraction:.2%} of a query "
        f"(> {MAX_OVERHEAD:.0%})"
    )
