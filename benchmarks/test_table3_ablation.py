"""Experiment E6 — Table III: ablation study of the NEWST components.

Two ablation families are evaluated at K = 30 against the occurrence ≥ 1
ground truth:

* seed-selection variants — NEWST (reallocated seeds), NEWST-W (initial
  seeds), NEWST-I (intersection), NEWST-U (union);
* weight/structure variants — NEWST-C (no Steiner step), NEWST-N (no node
  weights), NEWST-E (no edge weights).

Paper shape to reproduce: NEWST beats NEWST-W (seed reallocation helps),
NEWST-I is on par with NEWST, NEWST-U trades precision for F1/recall, and
NEWST-C attains the highest precision but cannot produce a reading order
(and loses F1 versus the full model).
"""

from __future__ import annotations

import pytest

from repro.config import EvaluationConfig, PipelineConfig
from repro.core.pipeline import RePaGerPipeline, VARIANT_CONFIGS, make_variant_config
from repro.eval.evaluator import OverlapEvaluator, PipelineMethodAdapter

from bench_utils import BENCH_SURVEYS, print_table

EVAL_K = 30


@pytest.fixture(scope="module")
def ablation_scores(bench_store, bench_scholar, bench_graph, bench_bank):
    evaluator = OverlapEvaluator(
        bench_bank,
        EvaluationConfig(k_values=(EVAL_K,), occurrence_levels=(1,), max_surveys=BENCH_SURVEYS),
    )
    scores = {}
    for variant in VARIANT_CONFIGS:
        config = make_variant_config(variant, PipelineConfig())
        pipeline = RePaGerPipeline(bench_store, bench_scholar, graph=bench_graph, config=config)
        scores[variant] = evaluator.evaluate(PipelineMethodAdapter(pipeline, variant))
    return scores


def test_table3_ablations(benchmark, ablation_scores):
    scores = benchmark.pedantic(lambda: ablation_scores, rounds=1, iterations=1)

    rows = [
        [name, method_scores.f1(1, EVAL_K), method_scores.precision(1, EVAL_K)]
        for name, method_scores in scores.items()
    ]
    print_table("Table III: NEWST ablation study (K=30, occurrences >= 1)",
                ["Method", "F1 score", "Precision"], rows)

    newst = scores["NEWST"]

    # Seed reallocation helps: NEWST >= NEWST-W on F1.
    assert newst.f1(1, EVAL_K) >= scores["NEWST-W"].f1(1, EVAL_K) - 0.01

    # NEWST-I is comparable with NEWST (paper: 0.2345 vs 0.2343).
    assert abs(scores["NEWST-I"].f1(1, EVAL_K) - newst.f1(1, EVAL_K)) < 0.05

    # NEWST-U trades precision for coverage: precision no better than NEWST.
    assert scores["NEWST-U"].precision(1, EVAL_K) <= newst.precision(1, EVAL_K) + 0.02

    # NEWST-C (no Steiner tree) keeps precision high but it cannot express a
    # reading order; its precision must be at least on par with NEWST.
    assert scores["NEWST-C"].precision(1, EVAL_K) >= newst.precision(1, EVAL_K) - 0.03

    # Dropping node or edge weights must not help.
    assert scores["NEWST-N"].f1(1, EVAL_K) <= newst.f1(1, EVAL_K) + 0.02
    assert scores["NEWST-E"].f1(1, EVAL_K) <= newst.f1(1, EVAL_K) + 0.02
